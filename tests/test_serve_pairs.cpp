// Cross-pair parallel serving: determinism and sequential equivalence.
//
// transmit_pairs' contract has two halves, and this suite pins both:
//
//  1. THREAD-COUNT INVARIANCE — four systems built from the same seed
//     with num_threads 0 (sequential reference), 1, 2, and 4 are driven
//     through the same waves; every TransmitReport field (mismatch and
//     latency compared as exact doubles), the aggregate SystemStats, the
//     channel-pipeline stats, sender-side buffer/slot state, and the
//     decoder replica weights must be BYTE-IDENTICAL across all counts.
//  2. SEQUENTIAL EQUIVALENCE — a wave over N pairs equals calling
//     transmit_many once per pair in order on a twin system (reports,
//     stats, weights), so cross-pair serving is a wall-clock lever, not a
//     semantic change.
//
// The case matrix follows the ISSUE: several pairs on one edge,
// cross-edge + intra-edge mixes, mid-run fine-tunes (buffer trigger
// trips inside a wave), shared-sender lanes, general-cache eviction
// contention, and simulator-scheduled waves through ParallelDispatcher.
// The suite runs under the TSan CI job like every tier-1 suite.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/dispatcher.hpp"
#include "core/system.hpp"
#include "test_util.hpp"

namespace semcache::core {
namespace {

constexpr std::size_t kThreadCounts[] = {0, 1, 2, 4};
constexpr std::size_t kVariants = std::size(kThreadCounts);

SystemConfig pairs_config(std::uint64_t seed, std::size_t num_threads) {
  SystemConfig config = test::tiny_system_config(seed);
  // Determinism needs lightly trained codecs, not accurate ones (the
  // tier-1 budget test_transmit_parallel standardized).
  config.pretrain.steps = 150;
  config.buffer_trigger = 4;  // fine-tunes fire mid-wave
  config.buffer_capacity = 32;
  config.finetune_epochs = 2;
  config.num_edges = 2;
  config.num_threads = num_threads;
  return config;
}

void expect_reports_equal(const TransmitReport& ref, const TransmitReport& got,
                          const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(ref.domain_true, got.domain_true);
  EXPECT_EQ(ref.domain_selected, got.domain_selected);
  EXPECT_EQ(ref.selection_correct, got.selection_correct);
  EXPECT_EQ(ref.decoded_meanings, got.decoded_meanings);
  EXPECT_EQ(ref.token_accuracy, got.token_accuracy);  // exact doubles
  EXPECT_EQ(ref.exact, got.exact);
  EXPECT_EQ(ref.mismatch, got.mismatch);
  EXPECT_EQ(ref.payload_bytes, got.payload_bytes);
  EXPECT_EQ(ref.airtime_bits, got.airtime_bits);
  EXPECT_EQ(ref.sync_bytes, got.sync_bytes);
  EXPECT_EQ(ref.output_return_bytes, got.output_return_bytes);
  EXPECT_EQ(ref.triggered_update, got.triggered_update);
  EXPECT_EQ(ref.established_user_model, got.established_user_model);
  EXPECT_EQ(ref.general_cache_hit, got.general_cache_hit);
  EXPECT_EQ(ref.latency_s, got.latency_s);
}

void expect_stats_equal(const SystemStats& ref, const SystemStats& got) {
  EXPECT_EQ(ref.messages, got.messages);
  EXPECT_EQ(ref.feature_bytes, got.feature_bytes);
  EXPECT_EQ(ref.uplink_bytes, got.uplink_bytes);
  EXPECT_EQ(ref.downlink_bytes, got.downlink_bytes);
  EXPECT_EQ(ref.sync_bytes, got.sync_bytes);
  EXPECT_EQ(ref.output_return_bytes, got.output_return_bytes);
  EXPECT_EQ(ref.updates, got.updates);
  EXPECT_EQ(ref.selection_errors, got.selection_errors);
  EXPECT_EQ(ref.sync_drops, got.sync_drops);
  EXPECT_EQ(ref.sync_retries, got.sync_retries);
  EXPECT_EQ(ref.sync_corrupt_drops, got.sync_corrupt_drops);
  EXPECT_EQ(ref.sync_duplicates, got.sync_duplicates);
  EXPECT_EQ(ref.sync_expired, got.sync_expired);
  EXPECT_EQ(ref.sync_ack_bytes, got.sync_ack_bytes);
  EXPECT_EQ(ref.full_resyncs, got.full_resyncs);
  EXPECT_EQ(ref.resync_bytes, got.resync_bytes);
  EXPECT_EQ(ref.outage_drops, got.outage_drops);
  EXPECT_EQ(ref.outage_queued, got.outage_queued);
  EXPECT_EQ(ref.degraded_serves, got.degraded_serves);
}

/// Sender-side slot (buffer counters, versions, full model weights) and
/// the replica-sync verdict must match the reference system exactly.
void expect_slot_state_equal(SemanticEdgeSystem& ref, SemanticEdgeSystem& got,
                             const std::string& user, std::size_t domain,
                             std::size_t sender_edge,
                             std::size_t receiver_edge) {
  SCOPED_TRACE("slot " + user + "/" + std::to_string(domain));
  UserModelSlot* rs = ref.edge_state(sender_edge).find_slot(user, domain);
  UserModelSlot* gs = got.edge_state(sender_edge).find_slot(user, domain);
  ASSERT_EQ(rs == nullptr, gs == nullptr);
  if (rs == nullptr) return;
  EXPECT_EQ(rs->send_version, gs->send_version);
  ASSERT_NE(rs->buffer, nullptr);
  ASSERT_NE(gs->buffer, nullptr);
  EXPECT_EQ(rs->buffer->size(), gs->buffer->size());
  EXPECT_EQ(rs->buffer->total_added(), gs->buffer->total_added());
  EXPECT_EQ(rs->buffer->adds_until_ready(), gs->buffer->adds_until_ready());
  EXPECT_EQ(rs->buffer->mean_mismatch(), gs->buffer->mean_mismatch());
  nn::ParameterSet rp = rs->model->parameters();
  nn::ParameterSet gp = gs->model->parameters();
  EXPECT_TRUE(rp.values_equal(gp));
  EXPECT_EQ(ref.replicas_in_sync(user, domain, sender_edge, receiver_edge),
            got.replicas_in_sync(user, domain, sender_edge, receiver_edge));
}

struct WaveResult {
  // reports[pair][message], completion counts alongside.
  std::vector<std::vector<TransmitReport>> reports;
  std::vector<std::vector<int>> seen;
};

/// Serve one wave on `system` and run the event loop to idle.
WaveResult serve_wave(SemanticEdgeSystem& system,
                      std::vector<SemanticEdgeSystem::PairBatch> batches) {
  WaveResult result;
  result.reports.resize(batches.size());
  result.seen.resize(batches.size());
  for (std::size_t p = 0; p < batches.size(); ++p) {
    result.reports[p].resize(batches[p].messages.size());
    result.seen[p].assign(batches[p].messages.size(), 0);
  }
  system.transmit_pairs(
      std::move(batches),
      [&result](std::size_t pair, std::size_t i, TransmitReport report) {
        result.reports[pair][i] = std::move(report);
        ++result.seen[pair][i];
      });
  system.simulator().run();
  return result;
}

/// The lockstep fixture: kVariants systems from one seed, one per thread
/// count, driven through identical waves test to test.
class ServePairsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // The threads=0 reference must be genuinely sequential even when the
    // environment (e.g. the TSan CI job) threads default-0 configs.
    unsetenv("SEMCACHE_THREADS");
    for (std::size_t v = 0; v < kVariants; ++v) {
      systems_[v] =
          SemanticEdgeSystem::build(pairs_config(2026, kThreadCounts[v]))
              .release();
      // Two senders-and-receivers per edge: a, c on edge 0; b, d on edge 1.
      systems_[v]->register_user("a", 0, nullptr);
      systems_[v]->register_user("b", 1, nullptr);
      systems_[v]->register_user("c", 0, nullptr);
      systems_[v]->register_user("d", 1, nullptr);
    }
    ASSERT_EQ(systems_[0]->thread_pool(), nullptr);
    ASSERT_NE(systems_[3]->thread_pool(), nullptr);
    ASSERT_EQ(systems_[3]->thread_pool()->worker_count(), 4u);
  }
  static void TearDownTestSuite() {
    for (auto*& system : systems_) {
      delete system;
      system = nullptr;
    }
  }

  /// Draw the same per-pair message batches from every system (rng_
  /// streams advance in lockstep). spec = {sender, receiver, domains}.
  struct PairSpec {
    std::string sender;
    std::string receiver;
    std::vector<std::size_t> domains;
  };
  static std::vector<std::vector<SemanticEdgeSystem::PairBatch>>
  sample_lockstep_waves(const std::vector<PairSpec>& specs) {
    std::vector<std::vector<SemanticEdgeSystem::PairBatch>> waves(kVariants);
    for (std::size_t v = 0; v < kVariants; ++v) waves[v].resize(specs.size());
    for (std::size_t p = 0; p < specs.size(); ++p) {
      for (std::size_t v = 0; v < kVariants; ++v) {
        waves[v][p].sender = specs[p].sender;
        waves[v][p].receiver = specs[p].receiver;
      }
      for (const std::size_t d : specs[p].domains) {
        for (std::size_t v = 0; v < kVariants; ++v) {
          waves[v][p].messages.push_back(
              systems_[v]->sample_message(specs[p].sender, d));
          EXPECT_EQ(waves[v][p].messages.back().surface,
                    waves[0][p].messages.back().surface);
        }
      }
    }
    return waves;
  }

  /// Serve the same wave everywhere; demand byte-identity to threads=0.
  static void run_and_compare(const std::vector<PairSpec>& specs) {
    auto waves = sample_lockstep_waves(specs);
    std::vector<WaveResult> results;
    results.reserve(kVariants);
    for (std::size_t v = 0; v < kVariants; ++v) {
      results.push_back(serve_wave(*systems_[v], std::move(waves[v])));
    }
    for (std::size_t v = 0; v < kVariants; ++v) {
      for (std::size_t p = 0; p < specs.size(); ++p) {
        for (const int count : results[v].seen[p]) EXPECT_EQ(count, 1);
      }
    }
    for (std::size_t v = 1; v < kVariants; ++v) {
      const std::string label = "threads " + std::to_string(kThreadCounts[v]);
      for (std::size_t p = 0; p < specs.size(); ++p) {
        for (std::size_t i = 0; i < results[0].reports[p].size(); ++i) {
          expect_reports_equal(results[0].reports[p][i],
                               results[v].reports[p][i],
                               label + " pair " + std::to_string(p) +
                                   " message " + std::to_string(i));
        }
      }
      expect_stats_equal(systems_[0]->stats(), systems_[v]->stats());
      for (const PairSpec& spec : specs) {
        const std::size_t se = systems_[0]->user(spec.sender).edge_index;
        const std::size_t re = systems_[0]->user(spec.receiver).edge_index;
        for (const std::size_t d : spec.domains) {
          expect_slot_state_equal(*systems_[0], *systems_[v], spec.sender, d,
                                  se, re);
        }
      }
    }
  }

  static SemanticEdgeSystem* systems_[kVariants];
};

SemanticEdgeSystem* ServePairsTest::systems_[kVariants] = {};

TEST_F(ServePairsTest, MultiplePairsOnOneEdge) {
  // Two pairs served by edge 0 alone (a -> c and c -> a): both data
  // planes are intra-edge, slots alias sender-side state, and with
  // trigger 4 both pairs fine-tune inside the wave.
  const auto before = systems_[0]->stats().updates;
  run_and_compare({{"a", "c", {0, 0, 0, 0, 0}}, {"c", "a", {0, 0, 0, 0, 0}}});
  EXPECT_GT(systems_[0]->stats().updates, before);
}

TEST_F(ServePairsTest, CrossAndIntraEdgeMixedDomains) {
  // Three lanes: a (cross-edge to b), c (intra-edge to a), d (intra-edge
  // to b on edge 1), with interleaved domains so every pair splits into
  // groups and at least one trips its trigger mid-wave.
  run_and_compare({{"a", "b", {0, 1, 0, 1, 0}},
                   {"c", "a", {1, 1, 1, 1}},
                   {"d", "b", {0, 0, 1, 0}}});
}

TEST_F(ServePairsTest, SharedSenderPairsSerializeInOneLane) {
  // Pairs (a -> b) and (a -> c) share the sending user, hence the sender
  // slots at edge 0: they must serialize in pair order inside one lane.
  // The first pair's fine-tune (trigger 4) must be visible to the second
  // pair's encodes exactly as it is sequentially.
  run_and_compare({{"a", "b", {0, 0, 0, 0, 0, 0}}, {"a", "c", {0, 0, 0}}});
}

TEST_F(ServePairsTest, MidRunFineTuneAcrossWaves) {
  // Buffer state carries across waves: the previous tests left partial
  // buffers, so this wave's triggers fire at offsets that depend on the
  // shared history — the strongest cross-wave state check.
  run_and_compare({{"a", "b", {1, 1, 1, 1, 1, 1, 1}},
                   {"c", "a", {0, 1, 0, 1}},
                   {"d", "b", {1, 0, 1, 0, 1}}});
}

TEST_F(ServePairsTest, ScheduledWavesThroughDispatcher) {
  // Same pairs, but scheduled as simulator work: ParallelDispatcher's
  // transmit_at lands three pair batches on t=0.25 (one concurrent wave
  // in the event loop) and one on t=0.5, all before running the loop.
  auto waves = sample_lockstep_waves({{"a", "b", {0, 0, 0, 0}},
                                      {"c", "b", {1, 1, 1}},
                                      {"d", "c", {0, 1}},
                                      {"a", "c", {1, 1, 1, 1, 1}}});
  std::vector<WaveResult> results(kVariants);
  for (std::size_t v = 0; v < kVariants; ++v) {
    SemanticEdgeSystem& system = *systems_[v];
    const double base = system.simulator().now();
    ParallelDispatcher dispatcher(system);
    WaveResult& result = results[v];
    result.reports.resize(waves[v].size());
    result.seen.resize(waves[v].size());
    for (std::size_t p = 0; p < waves[v].size(); ++p) {
      result.reports[p].resize(waves[v][p].messages.size());
      result.seen[p].assign(waves[v][p].messages.size(), 0);
    }
    auto record = [&result](std::size_t pair, std::size_t i,
                            TransmitReport report) {
      result.reports[pair][i] = std::move(report);
      ++result.seen[pair][i];
    };
    for (std::size_t p = 0; p < 3; ++p) {
      const std::size_t index = dispatcher.transmit_at(
          base + 0.25, waves[v][p].sender, waves[v][p].receiver,
          std::move(waves[v][p].messages), record);
      EXPECT_EQ(index, p);
    }
    dispatcher.transmit_at(base + 0.5, waves[v][3].sender,
                           waves[v][3].receiver,
                           std::move(waves[v][3].messages), record);
    system.simulator().run();
    for (std::size_t p = 0; p < result.seen.size(); ++p) {
      for (const int count : result.seen[p]) EXPECT_EQ(count, 1);
    }
  }
  for (std::size_t v = 1; v < kVariants; ++v) {
    for (std::size_t p = 0; p < results[0].reports.size(); ++p) {
      for (std::size_t i = 0; i < results[0].reports[p].size(); ++i) {
        expect_reports_equal(
            results[0].reports[p][i], results[v].reports[p][i],
            "threads " + std::to_string(kThreadCounts[v]) + " scheduled pair " +
                std::to_string(p) + " message " + std::to_string(i));
      }
    }
    expect_stats_equal(systems_[0]->stats(), systems_[v]->stats());
  }
}

TEST_F(ServePairsTest, DispatcherQueueMergesAndFlushes) {
  auto waves = sample_lockstep_waves(
      {{"c", "d", {0, 0}}, {"d", "a", {1, 1, 1}}, {"c", "d", {0}}});
  std::vector<WaveResult> results(kVariants);
  for (std::size_t v = 0; v < kVariants; ++v) {
    ParallelDispatcher dispatcher(*systems_[v]);
    // The third enqueue targets the same (c, d) pair: it must merge into
    // pair 0's batch, not open a third pair.
    for (std::size_t p = 0; p < 3; ++p) {
      dispatcher.enqueue(waves[v][p].sender, waves[v][p].receiver,
                         std::move(waves[v][p].messages));
    }
    EXPECT_EQ(dispatcher.queued_pairs(), 2u);
    EXPECT_EQ(dispatcher.queued_messages(), 6u);
    WaveResult& result = results[v];
    result.reports.assign(2, {});
    result.reports[0].resize(3);  // 2 enqueued + 1 merged
    result.reports[1].resize(3);
    result.seen.assign(2, {});
    result.seen[0].assign(3, 0);
    result.seen[1].assign(3, 0);
    const std::size_t pairs =
        dispatcher.flush([&result](std::size_t pair, std::size_t i,
                                   TransmitReport report) {
          result.reports[pair][i] = std::move(report);
          ++result.seen[pair][i];
        });
    EXPECT_EQ(pairs, 2u);
    EXPECT_EQ(dispatcher.queued_pairs(), 0u);
    EXPECT_EQ(dispatcher.waves_served(), 1u);
    EXPECT_EQ(dispatcher.flush([](std::size_t, std::size_t, TransmitReport) {}),
              0u);
    systems_[v]->simulator().run();
  }
  for (std::size_t v = 1; v < kVariants; ++v) {
    for (std::size_t p = 0; p < 2; ++p) {
      for (std::size_t i = 0; i < results[0].reports[p].size(); ++i) {
        EXPECT_EQ(results[v].seen[p][i], 1);
        expect_reports_equal(results[0].reports[p][i],
                             results[v].reports[p][i],
                             "threads " + std::to_string(kThreadCounts[v]) +
                                 " flushed pair " + std::to_string(p) +
                                 " message " + std::to_string(i));
      }
    }
    expect_stats_equal(systems_[0]->stats(), systems_[v]->stats());
  }
}

TEST_F(ServePairsTest, DispatcherRejectsBadBatchesWithoutLosingQueue) {
  // Admission happens at enqueue/schedule time, so a rejected batch can
  // never cost already-queued work a flush (flush moves the queue into
  // transmit_pairs, which by then cannot throw for admission reasons).
  SemanticEdgeSystem& system = *systems_[0];
  ParallelDispatcher dispatcher(system);
  dispatcher.enqueue("a", "b", {system.sample_message("a", 0)});
  EXPECT_THROW(dispatcher.enqueue("nobody", "b",
                                  {system.sample_message("a", 0)}),
               Error);
  text::Sentence short_msg = system.sample_message("a", 0);
  short_msg.surface.pop_back();
  EXPECT_THROW(dispatcher.enqueue("a", "b", {short_msg}), Error);
  EXPECT_THROW(dispatcher.transmit_at(system.simulator().now() + 1.0, "a",
                                      "nobody", {system.sample_message("a", 0)},
                                      [](std::size_t, std::size_t,
                                         TransmitReport) {}),
               Error);
  EXPECT_EQ(dispatcher.queued_pairs(), 1u);  // the good batch survived
  std::size_t delivered = 0;
  EXPECT_EQ(dispatcher.flush([&delivered](std::size_t, std::size_t,
                                          TransmitReport) { ++delivered; }),
            1u);
  system.simulator().run();
  EXPECT_EQ(delivered, 1u);
  // Keep the suite's lockstep mirror intact: replay the same traffic
  // (including the same rng_ draws) on every other variant.
  for (std::size_t v = 1; v < kVariants; ++v) {
    SemanticEdgeSystem& twin = *systems_[v];
    ParallelDispatcher mirror(twin);
    mirror.enqueue("a", "b", {twin.sample_message("a", 0)});
    EXPECT_THROW(mirror.enqueue("nobody", "b", {twin.sample_message("a", 0)}),
                 Error);
    text::Sentence twin_short = twin.sample_message("a", 0);
    twin_short.surface.pop_back();
    EXPECT_THROW(mirror.enqueue("a", "b", {twin_short}), Error);
    EXPECT_THROW(mirror.transmit_at(twin.simulator().now() + 1.0, "a",
                                    "nobody", {twin.sample_message("a", 0)},
                                    [](std::size_t, std::size_t,
                                       TransmitReport) {}),
                 Error);
    mirror.flush([](std::size_t, std::size_t, TransmitReport) {});
    twin.simulator().run();
    expect_stats_equal(systems_[0]->stats(), twin.stats());
  }
}

// --- standalone cases (fresh systems; lockstep with a sequential twin) ---

/// A wave must equal serving its pairs one at a time through
/// transmit_many, in pair order — on every thread count.
TEST(ServePairsEquivalence, WaveEqualsSequentialTransmitMany) {
  unsetenv("SEMCACHE_THREADS");
  struct Spec {
    const char* sender;
    const char* receiver;
    std::vector<std::size_t> domains;
  };
  const std::vector<Spec> specs = {{"a", "b", {0, 0, 0, 0, 0, 0}},
                                   {"c", "a", {1, 1, 1, 1}},
                                   {"d", "b", {0, 1, 0}}};
  // Reference: a threads=0 twin served pair by pair with transmit_many.
  auto reference = SemanticEdgeSystem::build(pairs_config(515, 0));
  std::vector<std::unique_ptr<SemanticEdgeSystem>> waved;
  for (const std::size_t threads : {std::size_t{0}, std::size_t{4}}) {
    waved.push_back(SemanticEdgeSystem::build(pairs_config(515, threads)));
  }
  for (auto* system :
       {reference.get(), waved[0].get(), waved[1].get()}) {
    system->register_user("a", 0, nullptr);
    system->register_user("b", 1, nullptr);
    system->register_user("c", 0, nullptr);
    system->register_user("d", 1, nullptr);
  }

  // Lockstep message draws.
  std::vector<std::vector<text::Sentence>> ref_batches(specs.size());
  std::vector<std::vector<SemanticEdgeSystem::PairBatch>> wave_batches(
      waved.size());
  for (auto& batches : wave_batches) batches.resize(specs.size());
  for (std::size_t p = 0; p < specs.size(); ++p) {
    for (std::size_t w = 0; w < waved.size(); ++w) {
      wave_batches[w][p].sender = specs[p].sender;
      wave_batches[w][p].receiver = specs[p].receiver;
    }
    for (const std::size_t d : specs[p].domains) {
      ref_batches[p].push_back(reference->sample_message(specs[p].sender, d));
      for (std::size_t w = 0; w < waved.size(); ++w) {
        wave_batches[w][p].messages.push_back(
            waved[w]->sample_message(specs[p].sender, d));
        ASSERT_EQ(wave_batches[w][p].messages.back().surface,
                  ref_batches[p].back().surface);
      }
    }
  }

  // Reference run: pair-by-pair transmit_many, one event-loop drain at
  // the end (matching the wave, which also schedules everything first).
  std::vector<std::vector<TransmitReport>> ref_reports(specs.size());
  for (std::size_t p = 0; p < specs.size(); ++p) {
    ref_reports[p].resize(ref_batches[p].size());
    reference->transmit_many(specs[p].sender, specs[p].receiver,
                             std::move(ref_batches[p]),
                             [&ref_reports, p](std::size_t i,
                                               TransmitReport report) {
                               ref_reports[p][i] = std::move(report);
                             });
  }
  reference->simulator().run();

  for (std::size_t w = 0; w < waved.size(); ++w) {
    const WaveResult result =
        serve_wave(*waved[w], std::move(wave_batches[w]));
    const std::string label =
        w == 0 ? "wave threads=0 vs sequential" : "wave threads=4 vs sequential";
    for (std::size_t p = 0; p < specs.size(); ++p) {
      for (std::size_t i = 0; i < ref_reports[p].size(); ++i) {
        EXPECT_EQ(result.seen[p][i], 1);
        expect_reports_equal(ref_reports[p][i], result.reports[p][i],
                             label + " pair " + std::to_string(p) +
                                 " message " + std::to_string(i));
      }
    }
    expect_stats_equal(reference->stats(), waved[w]->stats());
    for (const Spec& spec : specs) {
      const std::size_t se = reference->user(spec.sender).edge_index;
      const std::size_t re = reference->user(spec.receiver).edge_index;
      for (const std::size_t d : spec.domains) {
        expect_slot_state_equal(*reference, *waved[w], spec.sender, d, se, re);
      }
    }
  }
}

/// General-cache eviction contention: a cache that fits only one of the
/// two domain models forces every prepare to evict the other pair's
/// model. The prepare phase owns the caches (sequential, pair order), so
/// hit flags, eviction counts, and cloud-fetch accounting must stay
/// byte-identical across worker counts.
TEST(ServePairsEviction, CacheContentionStaysDeterministic) {
  unsetenv("SEMCACHE_THREADS");
  // Probe the model size once, then rebuild with a cache that holds one
  // general model but not two.
  std::size_t model_bytes = 0;
  {
    auto probe = SemanticEdgeSystem::build(pairs_config(77, 0));
    model_bytes = probe->general_model(0).byte_size();
  }
  ASSERT_GT(model_bytes, 0u);

  std::vector<std::unique_ptr<SemanticEdgeSystem>> systems;
  std::vector<std::vector<SemanticEdgeSystem::PairBatch>> waves(kVariants);
  for (std::size_t v = 0; v < kVariants; ++v) {
    SystemConfig config = pairs_config(77, kThreadCounts[v]);
    config.cache_capacity_bytes = model_bytes + model_bytes / 2;
    systems.push_back(SemanticEdgeSystem::build(config));
    systems[v]->register_user("a", 0, nullptr);
    systems[v]->register_user("b", 1, nullptr);
    systems[v]->register_user("c", 0, nullptr);
    systems[v]->register_user("d", 1, nullptr);
  }
  // Pairs alternate domains so edge 0's cache thrashes between the two
  // general models during the prepare phase.
  const std::vector<std::vector<std::size_t>> domains = {
      {0, 1, 0, 1}, {1, 0, 1, 0}, {0, 0, 1, 1}};
  const std::vector<std::pair<std::string, std::string>> users = {
      {"a", "b"}, {"c", "a"}, {"d", "c"}};
  for (std::size_t v = 0; v < kVariants; ++v) {
    waves[v].resize(users.size());
    for (std::size_t p = 0; p < users.size(); ++p) {
      waves[v][p].sender = users[p].first;
      waves[v][p].receiver = users[p].second;
      for (const std::size_t d : domains[p]) {
        waves[v][p].messages.push_back(
            systems[v]->sample_message(users[p].first, d));
      }
    }
  }
  std::vector<WaveResult> results;
  results.reserve(kVariants);
  for (std::size_t v = 0; v < kVariants; ++v) {
    results.push_back(serve_wave(*systems[v], std::move(waves[v])));
  }
  bool saw_miss = false;
  for (const auto& pair_reports : results[0].reports) {
    for (const auto& report : pair_reports) {
      saw_miss = saw_miss || !report.general_cache_hit;
    }
  }
  EXPECT_TRUE(saw_miss);  // the cache really thrashed
  for (std::size_t v = 1; v < kVariants; ++v) {
    for (std::size_t p = 0; p < results[0].reports.size(); ++p) {
      for (std::size_t i = 0; i < results[0].reports[p].size(); ++i) {
        expect_reports_equal(results[0].reports[p][i],
                             results[v].reports[p][i],
                             "threads " + std::to_string(kThreadCounts[v]) +
                                 " eviction pair " + std::to_string(p) +
                                 " message " + std::to_string(i));
      }
    }
    expect_stats_equal(systems[0]->stats(), systems[v]->stats());
    for (std::size_t e = 0; e < 2; ++e) {
      EXPECT_EQ(systems[0]->edge_state(e).general_cache().stats().evictions,
                systems[v]->edge_state(e).general_cache().stats().evictions);
      EXPECT_EQ(systems[0]->edge_state(e).general_cache().stats().misses,
                systems[v]->edge_state(e).general_cache().stats().misses);
    }
  }
}

/// Failure injection active: a transmit_pairs wave STAYS cross-pair
/// parallel (no sequential fallback — the fault coins are keyed by
/// message identity, not a global RNG ordinal) and still matches a twin
/// served through transmit_many, report-for-report and stat-for-stat.
TEST(ServePairsFaults, WavesStayParallelUnderSyncLoss) {
  unsetenv("SEMCACHE_THREADS");
  auto waved = SemanticEdgeSystem::build(pairs_config(99, 4));
  auto reference = SemanticEdgeSystem::build(pairs_config(99, 4));
  for (auto* system : {waved.get(), reference.get()}) {
    system->register_user("a", 0, nullptr);
    system->register_user("b", 1, nullptr);
    system->set_sync_loss_probability(0.5);
  }
  std::vector<SemanticEdgeSystem::PairBatch> batch(1);
  batch[0].sender = "a";
  batch[0].receiver = "b";
  std::vector<text::Sentence> ref_messages;
  for (int i = 0; i < 6; ++i) {
    batch[0].messages.push_back(waved->sample_message("a", 0));
    ref_messages.push_back(reference->sample_message("a", 0));
  }
  const WaveResult result = serve_wave(*waved, std::move(batch));
  std::vector<TransmitReport> ref_reports(6);
  reference->transmit_many("a", "b", std::move(ref_messages),
                           [&ref_reports](std::size_t i,
                                          TransmitReport report) {
                             ref_reports[i] = std::move(report);
                           });
  reference->simulator().run();
  for (std::size_t i = 0; i < 6; ++i) {
    expect_reports_equal(ref_reports[i], result.reports[0][i],
                         "faulted message " + std::to_string(i));
  }
  expect_stats_equal(reference->stats(), waved->stats());
}

}  // namespace
}  // namespace semcache::core
