// Unit tests for semcache::channel — CRC, block/convolutional codes,
// interleaving, modulation, physical channel statistics, and the pipeline.
#include <gtest/gtest.h>

#include "channel/code.hpp"
#include "channel/convolutional.hpp"
#include "channel/crc.hpp"
#include "channel/hamming.hpp"
#include "channel/interleaver.hpp"
#include "channel/modulation.hpp"
#include "channel/physical.hpp"
#include "channel/pipeline.hpp"
#include "channel/repetition.hpp"
#include "common/check.hpp"
#include "test_util.hpp"

namespace semcache::channel {
namespace {

using test::random_bits;

TEST(Crc, KnownVector) {
  // CRC-32 of "123456789" is 0xCBF43926.
  const std::string s = "123456789";
  std::vector<std::uint8_t> bytes(s.begin(), s.end());
  EXPECT_EQ(crc32(bytes), 0xCBF43926u);
}

TEST(Crc, AppendVerifyRoundTrip) {
  Rng rng(1);
  const BitVec payload = random_bits(50, rng);
  const BitVec with = crc_append(payload);
  EXPECT_EQ(with.size(), payload.size() + 32);
  const auto check = crc_verify(with);
  EXPECT_TRUE(check.ok);
  EXPECT_EQ(check.payload, payload);
}

TEST(Crc, DetectsSingleBitFlip) {
  Rng rng(2);
  const BitVec payload = random_bits(64, rng);
  for (std::size_t i = 0; i < payload.size() + 32; i += 7) {
    BitVec corrupted = crc_append(payload);
    corrupted[i] ^= 1;
    EXPECT_FALSE(crc_verify(corrupted).ok) << "flip at " << i;
  }
}

TEST(Crc, ShortInputFailsGracefully) {
  BitVec tiny(8, 1);
  EXPECT_FALSE(crc_verify(tiny).ok);
}

TEST(Hamming, NibbleRoundTripAllValues) {
  for (std::uint8_t n = 0; n < 16; ++n) {
    EXPECT_EQ(HammingCode::decode_block(HammingCode::encode_nibble(n)), n);
  }
}

TEST(Hamming, CorrectsEverySingleBitError) {
  // Exhaustive property: all 16 nibbles x all 7 flip positions.
  for (std::uint8_t n = 0; n < 16; ++n) {
    const std::uint8_t cw = HammingCode::encode_nibble(n);
    for (int bit = 0; bit < 7; ++bit) {
      const auto corrupted = static_cast<std::uint8_t>(cw ^ (1u << bit));
      EXPECT_EQ(HammingCode::decode_block(corrupted), n)
          << "nibble " << int(n) << " flip " << bit;
    }
  }
}

TEST(Hamming, StreamRoundTripWithPadding) {
  Rng rng(3);
  HammingCode code;
  for (const std::size_t len : {1u, 4u, 5u, 13u, 128u}) {
    const BitVec info = random_bits(len, rng);
    BitVec decoded = code.decode(code.encode(info));
    decoded.resize(len);
    EXPECT_EQ(decoded, info) << "len " << len;
  }
}

TEST(Hamming, EncodedLength) {
  HammingCode code;
  EXPECT_EQ(code.encoded_length(4), 7u);
  EXPECT_EQ(code.encoded_length(5), 14u);
  EXPECT_DOUBLE_EQ(code.rate(), 4.0 / 7.0);
}

TEST(Repetition, MajorityVoteCorrects) {
  RepetitionCode code(3);
  BitVec info = {1, 0, 1, 1};
  BitVec coded = code.encode(info);
  EXPECT_EQ(coded.size(), 12u);
  // Flip one vote per bit: still decodes.
  for (std::size_t i = 0; i < coded.size(); i += 3) coded[i] ^= 1;
  EXPECT_EQ(code.decode(coded), info);
}

TEST(Repetition, EvenRepeatsRejected) {
  EXPECT_THROW(RepetitionCode(2), Error);
  EXPECT_NO_THROW(RepetitionCode(1));
}

TEST(Conv, CleanRoundTrip) {
  Rng rng(4);
  ConvolutionalCode code;
  for (const std::size_t len : {1u, 2u, 8u, 33u, 200u}) {
    const BitVec info = random_bits(len, rng);
    EXPECT_EQ(code.decode(code.encode(info)), info) << "len " << len;
  }
}

TEST(Conv, EncodedLengthIncludesTail) {
  ConvolutionalCode code;
  EXPECT_EQ(code.encoded_length(10), 2u * 12u);
  const BitVec info(10, 1);
  EXPECT_EQ(code.encode(info).size(), code.encoded_length(10));
}

TEST(Conv, CorrectsScatteredErrors) {
  // dfree = 5 for (7,5) K=3: any 2 errors far apart are correctable.
  Rng rng(5);
  ConvolutionalCode code;
  const BitVec info = random_bits(60, rng);
  BitVec coded = code.encode(info);
  coded[10] ^= 1;
  coded[60] ^= 1;
  coded[100] ^= 1;
  EXPECT_EQ(code.decode(coded), info);
}

TEST(Conv, BeatsUncodedOnBsc) {
  Rng rng(6);
  ConvolutionalCode code;
  BscChannel bsc(0.04);
  std::size_t coded_errors = 0, uncoded_errors = 0, total = 0;
  for (int trial = 0; trial < 60; ++trial) {
    const BitVec info = random_bits(120, rng);
    const BitVec rx_coded = code.decode(bsc.transmit(code.encode(info), rng));
    const BitVec rx_raw = bsc.transmit(info, rng);
    coded_errors += hamming_distance(info, rx_coded);
    uncoded_errors += hamming_distance(info, rx_raw);
    total += info.size();
  }
  EXPECT_LT(coded_errors * 3, uncoded_errors)
      << "coded BER " << coded_errors / double(total) << " vs uncoded "
      << uncoded_errors / double(total);
}

TEST(Interleaver, RoundTrip) {
  Rng rng(7);
  for (const std::size_t depth : {1u, 2u, 4u, 8u}) {
    BlockInterleaver il(depth);
    BitVec bits = random_bits(64, rng);
    EXPECT_EQ(il.deinterleave(il.interleave(bits)), bits) << "depth " << depth;
  }
}

TEST(Interleaver, SpreadsBursts) {
  BlockInterleaver il(8);
  BitVec bits(64, 0);
  BitVec tx = il.interleave(bits);
  // Burst of 8 consecutive flips on the wire.
  for (std::size_t i = 16; i < 24; ++i) tx[i] ^= 1;
  const BitVec rx = il.deinterleave(tx);
  // After deinterleaving no two errors should be adjacent.
  for (std::size_t i = 0; i + 1 < rx.size(); ++i) {
    EXPECT_FALSE(rx[i] == 1 && rx[i + 1] == 1) << "adjacent errors at " << i;
  }
}

TEST(Modulation, NoiselessRoundTripAll) {
  Rng rng(8);
  for (const Modulation m :
       {Modulation::kBpsk, Modulation::kQpsk, Modulation::kQam16}) {
    const BitVec bits = random_bits(37, rng);  // odd length: padding path
    const auto symbols = modulate(bits, m);
    EXPECT_EQ(demodulate(symbols, m, bits.size()), bits)
        << modulation_name(m);
  }
}

TEST(Modulation, UnitAveragePower) {
  Rng rng(9);
  for (const Modulation m :
       {Modulation::kBpsk, Modulation::kQpsk, Modulation::kQam16}) {
    const BitVec bits = random_bits(4000, rng);
    const auto symbols = modulate(bits, m);
    double power = 0.0;
    for (const auto& s : symbols) power += std::norm(s);
    power /= static_cast<double>(symbols.size());
    EXPECT_NEAR(power, 1.0, 0.05) << modulation_name(m);
  }
}

TEST(Modulation, BitsPerSymbol) {
  EXPECT_EQ(bits_per_symbol(Modulation::kBpsk), 1u);
  EXPECT_EQ(bits_per_symbol(Modulation::kQpsk), 2u);
  EXPECT_EQ(bits_per_symbol(Modulation::kQam16), 4u);
}

TEST(Physical, BpskAwgnBerMatchesTheory) {
  // Empirical BER within a factor band of Q(sqrt(2 Es/N0)).
  for (const double snr_db : {0.0, 4.0}) {
    Rng rng(10);
    ModulatedChannel ch(Modulation::kBpsk,
                        std::make_unique<AwgnChannel>(snr_db));
    std::size_t errors = 0, total = 0;
    for (int trial = 0; trial < 40; ++trial) {
      const BitVec bits = random_bits(2000, rng);
      errors += hamming_distance(bits, ch.transmit(bits, rng));
      total += bits.size();
    }
    const double ber = errors / static_cast<double>(total);
    const double theory = bpsk_awgn_ber(snr_db);
    EXPECT_GT(ber, theory * 0.75) << "snr " << snr_db;
    EXPECT_LT(ber, theory * 1.25) << "snr " << snr_db;
  }
}

TEST(Physical, AwgnBerDecreasesWithSnr) {
  Rng rng(11);
  double prev = 1.0;
  for (const double snr_db : {-2.0, 2.0, 6.0, 10.0}) {
    ModulatedChannel ch(Modulation::kQpsk,
                        std::make_unique<AwgnChannel>(snr_db));
    const BitVec bits = random_bits(20000, rng);
    const double ber =
        hamming_distance(bits, ch.transmit(bits, rng)) / 20000.0;
    EXPECT_LT(ber, prev);
    prev = ber;
  }
}

TEST(Physical, RayleighWorseThanAwgn) {
  Rng rng(12);
  const double snr_db = 8.0;
  ModulatedChannel awgn(Modulation::kBpsk,
                        std::make_unique<AwgnChannel>(snr_db));
  ModulatedChannel ray(Modulation::kBpsk,
                       std::make_unique<RayleighChannel>(snr_db, 16));
  const BitVec bits = random_bits(40000, rng);
  const double awgn_ber = hamming_distance(bits, awgn.transmit(bits, rng)) /
                          static_cast<double>(bits.size());
  const double ray_ber = hamming_distance(bits, ray.transmit(bits, rng)) /
                         static_cast<double>(bits.size());
  EXPECT_GT(ray_ber, awgn_ber * 2.0);
}

TEST(Physical, BscFlipRateMatches) {
  Rng rng(13);
  BscChannel bsc(0.1);
  const BitVec bits = random_bits(50000, rng);
  const double rate = hamming_distance(bits, bsc.transmit(bits, rng)) / 50000.0;
  EXPECT_NEAR(rate, 0.1, 0.01);
}

TEST(Physical, BscZeroIsLossless) {
  Rng rng(14);
  BscChannel bsc(0.0);
  const BitVec bits = random_bits(500, rng);
  EXPECT_EQ(bsc.transmit(bits, rng), bits);
}

TEST(Physical, BscValidatesProbability) {
  EXPECT_THROW(BscChannel(0.6), Error);
  EXPECT_THROW(BscChannel(-0.1), Error);
}

TEST(Pipeline, LosslessOnCleanChannel) {
  Rng rng(15);
  auto pipe = make_bsc_pipeline(std::make_unique<ConvolutionalCode>(), 0.0);
  const BitVec payload = random_bits(96, rng);
  EXPECT_EQ(pipe->transmit(payload, rng), payload);
  EXPECT_EQ(pipe->stats().messages, 1u);
  EXPECT_EQ(pipe->stats().payload_bits, 96u);
  EXPECT_GT(pipe->stats().airtime_bits, 96u);  // code overhead on the air
}

TEST(Pipeline, TransmitBatchMatchesSequentialBitsAndStats) {
  // Batch message i must consume exactly rngs[i]'s stream, so its bits are
  // identical to a sequential transmit with the same fork — and the stats
  // must account per MESSAGE, not per transmit_batch call.
  auto batched = make_awgn_pipeline(std::make_unique<HammingCode>(),
                                    Modulation::kQpsk, 6.0, 4);
  auto sequential = make_awgn_pipeline(std::make_unique<HammingCode>(),
                                       Modulation::kQpsk, 6.0, 4);
  Rng payload_rng(19);
  const Rng parent(19);
  std::vector<BitVec> payloads;
  std::vector<Rng> batch_rngs;
  for (std::uint64_t i = 0; i < 5; ++i) {
    payloads.push_back(random_bits(96, payload_rng));
    batch_rngs.push_back(parent.fork(i));
  }
  const std::vector<BitVec> received =
      batched->transmit_batch(payloads, batch_rngs);

  ASSERT_EQ(received.size(), payloads.size());
  std::size_t expected_payload_bits = 0;
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    Rng seq_rng = parent.fork(i);
    EXPECT_EQ(received[i], sequential->transmit(payloads[i], seq_rng))
        << "payload " << i;
    expected_payload_bits += payloads[i].size();
  }
  // Per-message accounting: 5 messages, and the bit sums equal the
  // sequential path's.
  EXPECT_EQ(batched->stats().messages, 5u);
  EXPECT_EQ(batched->stats().messages, sequential->stats().messages);
  EXPECT_EQ(batched->stats().payload_bits, expected_payload_bits);
  EXPECT_EQ(batched->stats().payload_bits, sequential->stats().payload_bits);
  EXPECT_EQ(batched->stats().airtime_bits, sequential->stats().airtime_bits);
}

TEST(Pipeline, TransmitBatchOnPoolBitIdenticalToSequential) {
  // With a worker pool attached, transmit_batch runs the per-message
  // passes concurrently but must stay bit-identical — received bits AND
  // stats — to the detached pipeline, for every worker count. Message i
  // consumes only rngs[i] and stats commit in index order after the join.
  auto make = [] {
    return make_awgn_pipeline(std::make_unique<ConvolutionalCode>(),
                              Modulation::kQam16, 4.0, 8);
  };
  const Rng parent(27);
  Rng payload_rng(27);
  std::vector<BitVec> payloads;
  for (std::uint64_t i = 0; i < 9; ++i) {
    payloads.push_back(random_bits(120, payload_rng));
  }
  auto fork_all = [&] {
    std::vector<Rng> rngs;
    for (std::uint64_t i = 0; i < payloads.size(); ++i) {
      rngs.push_back(parent.fork(i));
    }
    return rngs;
  };

  auto reference = make();
  std::vector<Rng> ref_rngs = fork_all();
  const std::vector<BitVec> expected =
      reference->transmit_batch(payloads, ref_rngs);

  for (const std::size_t workers : {1u, 2u, 4u}) {
    common::ThreadPool pool(workers);
    auto pooled = make();
    pooled->set_thread_pool(&pool);
    std::vector<Rng> rngs = fork_all();
    EXPECT_EQ(pooled->transmit_batch(payloads, rngs), expected)
        << workers << " workers";
    EXPECT_EQ(pooled->stats().messages, reference->stats().messages);
    EXPECT_EQ(pooled->stats().payload_bits, reference->stats().payload_bits);
    EXPECT_EQ(pooled->stats().airtime_bits, reference->stats().airtime_bits);
  }
}

TEST(Pipeline, TransmitBatchRejectsRngCountMismatch) {
  auto pipe = make_bsc_pipeline(std::make_unique<IdentityCode>(), 0.0);
  Rng rng(20);
  std::vector<BitVec> payloads = {random_bits(8, rng)};
  std::vector<Rng> rngs;  // empty: one rng short
  EXPECT_THROW(pipe->transmit_batch(payloads, rngs), Error);
}

TEST(Pipeline, MakeCodeFactory) {
  EXPECT_EQ(make_code("uncoded")->name(), "uncoded");
  EXPECT_EQ(make_code("rep3")->name(), "repetition3");
  EXPECT_EQ(make_code("hamming74")->name(), "hamming74");
  EXPECT_EQ(make_code("conv_k3_r12")->name(), "conv_k3_r12");
  EXPECT_THROW(make_code("turbo"), Error);
}

TEST(Pipeline, CodedBeatsUncodedAtModerateNoise) {
  Rng rng(16);
  auto coded = make_bsc_pipeline(std::make_unique<ConvolutionalCode>(), 0.03);
  auto uncoded = make_bsc_pipeline(std::make_unique<IdentityCode>(), 0.03);
  std::size_t coded_err = 0, uncoded_err = 0;
  for (int i = 0; i < 40; ++i) {
    const BitVec payload = random_bits(128, rng);
    coded_err += hamming_distance(payload, coded->transmit(payload, rng));
    uncoded_err += hamming_distance(payload, uncoded->transmit(payload, rng));
  }
  EXPECT_LT(coded_err * 2, uncoded_err);
}

TEST(Pipeline, InterleaverHelpsOnFading) {
  // Deep block fades wipe out consecutive symbols; interleaving spreads
  // them across Hamming blocks.
  Rng rng_a(17), rng_b(17);
  auto plain = make_rayleigh_pipeline(std::make_unique<HammingCode>(),
                                      Modulation::kBpsk, 9.0, 16, 1);
  auto interleaved = make_rayleigh_pipeline(std::make_unique<HammingCode>(),
                                            Modulation::kBpsk, 9.0, 16, 16);
  std::size_t plain_err = 0, il_err = 0;
  for (int i = 0; i < 120; ++i) {
    Rng payload_rng(static_cast<std::uint64_t>(i));
    const BitVec payload = random_bits(256, payload_rng);
    plain_err += hamming_distance(payload, plain->transmit(payload, rng_a));
    il_err += hamming_distance(payload, interleaved->transmit(payload, rng_b));
  }
  EXPECT_LT(il_err, plain_err);
}

class CodeRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(CodeRoundTrip, CleanChannelIdentity) {
  Rng rng(18);
  auto code = make_code(GetParam());
  for (int len : {8, 56, 123}) {
    const BitVec info = random_bits(static_cast<std::size_t>(len), rng);
    BitVec out = code->decode(code->encode(info));
    out.resize(info.size());
    EXPECT_EQ(out, info) << GetParam() << " len " << len;
    EXPECT_EQ(code->encode(info).size(),
              code->encoded_length(info.size()))
        << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, CodeRoundTrip,
                         ::testing::Values("uncoded", "rep3", "rep5",
                                           "hamming74", "conv_k3_r12"));

}  // namespace
}  // namespace semcache::channel
