// Unit tests for semcache::edge — event ordering and determinism, FIFO
// compute queueing, link serialization/propagation, topology construction.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/thread_pool.hpp"
#include "edge/network.hpp"
#include "edge/sim.hpp"

namespace semcache::edge {
namespace {

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
  EXPECT_EQ(sim.processed(), 3u);
}

TEST(Simulator, TiesBreakByScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule_at(1.0, [&, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, ReentrantScheduling) {
  Simulator sim;
  std::vector<double> times;
  sim.schedule_at(1.0, [&] {
    times.push_back(sim.now());
    sim.schedule_after(0.5, [&] { times.push_back(sim.now()); });
  });
  sim.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[1], 1.5);
}

TEST(Simulator, PastSchedulingRejected) {
  Simulator sim;
  sim.schedule_at(2.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(1.0, [] {}), Error);
  EXPECT_THROW(sim.schedule_after(-1.0, [] {}), Error);
}

TEST(Simulator, RunUntilAdvancesClockOnly) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(5.0, [&] { ++fired; });
  sim.run_until(3.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, StepReturnsFalseWhenEmpty) {
  Simulator sim;
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, RunUntilPastTargetClampsInsteadOfRewinding) {
  // run_until(t) with t < now is clamped to a no-op: the clock must
  // never move backwards (a rewound now_ would corrupt every later
  // schedule_after delay) and pending events must survive. Guards the
  // clamp semantics that replaced the old hard error.
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(5.0, [&] { ++fired; });
  sim.run_until(3.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
  sim.run_until(2.0);  // in the past: clamped, nothing happens
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
  EXPECT_EQ(sim.pending(), 1u);  // the t=5 event is not lost
  sim.schedule_after(0.5, [&] { ++fired; });  // 3.5, not 2.5
  sim.run();
  EXPECT_EQ(fired, 3);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(Simulator, ConcurrentWaveRunsThreePhasesInScheduleOrder) {
  // Inline mode (no pool): prepares in schedule order, then every
  // compute, then commits in schedule order.
  Simulator sim;
  std::vector<std::string> log;
  for (int i = 0; i < 3; ++i) {
    sim.schedule_concurrent_at(
        1.0, /*lane=*/static_cast<std::uint64_t>(i),
        [&log, i] { log.push_back("p" + std::to_string(i)); },
        [&log, i] { log.push_back("x" + std::to_string(i)); },
        [&log, i] { log.push_back("c" + std::to_string(i)); });
  }
  EXPECT_TRUE(sim.step());  // the whole wave is one step
  EXPECT_EQ(sim.processed(), 3u);
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_DOUBLE_EQ(sim.now(), 1.0);
  EXPECT_EQ(log, (std::vector<std::string>{"p0", "p1", "p2", "x0", "x1", "x2",
                                           "c0", "c1", "c2"}));
}

TEST(Simulator, ConcurrentLaneKeySerializesComputes) {
  // Two events sharing a lane key run their computes in schedule order on
  // one worker (appending to an unsynchronized lane-local vector is safe);
  // the third lane runs concurrently and only its own state moves.
  common::ThreadPool pool(4);
  Simulator sim;
  sim.set_thread_pool(&pool);
  std::vector<int> lane_a;
  std::vector<int> lane_b;
  sim.schedule_concurrent_at(1.0, 7, nullptr,
                             [&] { lane_a.push_back(1); }, nullptr);
  sim.schedule_concurrent_at(1.0, 9, nullptr,
                             [&] { lane_b.push_back(10); }, nullptr);
  sim.schedule_concurrent_at(1.0, 7, nullptr,
                             [&] { lane_a.push_back(2); }, nullptr);
  sim.run();
  EXPECT_EQ(lane_a, (std::vector<int>{1, 2}));
  EXPECT_EQ(lane_b, (std::vector<int>{10}));
  EXPECT_EQ(sim.processed(), 3u);
}

TEST(Simulator, OrdinaryEventSplitsConcurrentWave) {
  // An ordinary event scheduled (by order) between two concurrent events
  // at the same timestamp observes exactly the prefix's committed state —
  // the wave must not leap over it.
  Simulator sim;
  std::vector<std::string> log;
  sim.schedule_concurrent_at(1.0, 0, nullptr,
                             [&] { log.push_back("x0"); },
                             [&] { log.push_back("c0"); });
  sim.schedule_at(1.0, [&] { log.push_back("ordinary"); });
  sim.schedule_concurrent_at(1.0, 0, nullptr,
                             [&] { log.push_back("x1"); },
                             [&] { log.push_back("c1"); });
  sim.run();
  EXPECT_EQ(log, (std::vector<std::string>{"x0", "c0", "ordinary", "x1",
                                           "c1"}));
  EXPECT_EQ(sim.processed(), 3u);
}

TEST(Simulator, ConcurrentPhasesMayScheduleMoreWork) {
  // prepare/commit run on the calling thread and may schedule freely;
  // same-time concurrent events scheduled mid-wave join a LATER wave.
  Simulator sim;
  std::vector<std::string> log;
  sim.schedule_concurrent_at(
      1.0, 0,
      [&] {
        sim.schedule_concurrent_at(1.0, 0, nullptr,
                                   [&] { log.push_back("x-late"); }, nullptr);
      },
      [&] { log.push_back("x0"); },
      [&] { sim.schedule_after(0.5, [&] { log.push_back("after"); }); });
  sim.run();
  EXPECT_EQ(log, (std::vector<std::string>{"x0", "x-late", "after"}));
  EXPECT_DOUBLE_EQ(sim.now(), 1.5);
}

TEST(Simulator, ConcurrentResultsMatchInlineWithPool) {
  // The same schedule, pooled and inline, must produce identical
  // lane-local sequences — the pool is a wall-clock lever only.
  auto drive = [](common::ThreadPool* pool) {
    Simulator sim;
    if (pool != nullptr) sim.set_thread_pool(pool);
    std::vector<std::vector<int>> lanes(4);
    for (int round = 0; round < 3; ++round) {
      for (std::uint64_t lane = 0; lane < 4; ++lane) {
        sim.schedule_concurrent_at(
            1.0 + round, lane, nullptr,
            [&lanes, lane, round] {
              lanes[lane].push_back(round * 10 + static_cast<int>(lane));
            },
            nullptr);
      }
    }
    sim.run();
    return lanes;
  };
  common::ThreadPool pool(4);
  EXPECT_EQ(drive(nullptr), drive(&pool));
}

TEST(Simulator, ConcurrentFailureIsolatedToItsLane) {
  // A throwing compute fails its event and later events in the SAME
  // lane, but sibling lanes still compute and commit; the exception
  // surfaces from run() after the wave.
  Simulator sim;
  std::vector<std::string> log;
  sim.schedule_concurrent_at(1.0, 7, nullptr,
                             [] { throw Error("lane 7 event 0 exploded"); },
                             [&] { log.push_back("c-bad"); });
  sim.schedule_concurrent_at(1.0, 9, nullptr,
                             [&] { log.push_back("x-other"); },
                             [&] { log.push_back("c-other"); });
  sim.schedule_concurrent_at(1.0, 7, nullptr,
                             [&] { log.push_back("x-same-lane"); },
                             [&] { log.push_back("c-same-lane"); });
  EXPECT_THROW(sim.run(), Error);
  // The sibling lane ran to commit; the failed lane's events did not,
  // and nothing from them leaked into the log.
  EXPECT_EQ(log, (std::vector<std::string>{"x-other", "c-other"}));
  EXPECT_EQ(sim.processed(), 3u);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, ConcurrentRejectsBadArguments) {
  Simulator sim;
  sim.schedule_at(2.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_concurrent_at(1.0, 0, nullptr, [] {}, nullptr),
               Error);
  EXPECT_THROW(sim.schedule_concurrent_at(3.0, 0, nullptr, nullptr, nullptr),
               Error);
}

TEST(Node, ServiceTimeScalesWithCapacity) {
  Node fast(0, "fast", NodeKind::kEdgeServer, 2e9);
  Node slow(1, "slow", NodeKind::kDevice, 1e9);
  EXPECT_DOUBLE_EQ(fast.service_time(2e9), 1.0);
  EXPECT_DOUBLE_EQ(slow.service_time(2e9), 2.0);
}

TEST(Node, FifoQueueing) {
  Simulator sim;
  Node node(0, "n", NodeKind::kEdgeServer, 1e9);  // 1 GFLOP/s
  std::vector<double> finish;
  // Two 1-second jobs submitted at t=0 must finish at 1s and 2s.
  node.submit_compute(sim, 1e9, [&] { finish.push_back(sim.now()); });
  node.submit_compute(sim, 1e9, [&] { finish.push_back(sim.now()); });
  sim.run();
  ASSERT_EQ(finish.size(), 2u);
  EXPECT_DOUBLE_EQ(finish[0], 1.0);
  EXPECT_DOUBLE_EQ(finish[1], 2.0);
  EXPECT_DOUBLE_EQ(node.busy_seconds(), 2.0);
  EXPECT_EQ(node.jobs_completed(), 2u);
}

TEST(Node, IdleGapResetsQueue) {
  Simulator sim;
  Node node(0, "n", NodeKind::kEdgeServer, 1e9);
  std::vector<double> finish;
  node.submit_compute(sim, 1e9, [&] { finish.push_back(sim.now()); });
  sim.run();
  // Now idle at t=1; next job at t=5 finishes at 6, no queueing carryover.
  sim.schedule_at(5.0, [&] {
    node.submit_compute(sim, 1e9, [&] { finish.push_back(sim.now()); });
  });
  sim.run();
  ASSERT_EQ(finish.size(), 2u);
  EXPECT_DOUBLE_EQ(finish[1], 6.0);
}

TEST(Node, RejectsBadArguments) {
  EXPECT_THROW(Node(0, "x", NodeKind::kCloud, 0.0), Error);
  Node n(0, "n", NodeKind::kCloud, 1.0);
  EXPECT_THROW(n.service_time(-1.0), Error);
}

TEST(Link, TransferTimeComponents) {
  Link link(0, 0, 1, 8e6, 0.01);  // 8 Mbit/s, 10 ms propagation
  // 1000 bytes = 8000 bits -> 1 ms serialization + 10 ms propagation.
  EXPECT_NEAR(link.transfer_time(1000), 0.011, 1e-12);
}

TEST(Link, SerializesTransfersFifo) {
  Simulator sim;
  Link link(0, 0, 1, 8e6, 0.0);
  std::vector<double> arrivals;
  link.send(sim, 1000, [&] { arrivals.push_back(sim.now()); });
  link.send(sim, 1000, [&] { arrivals.push_back(sim.now()); });
  sim.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_NEAR(arrivals[0], 0.001, 1e-12);
  EXPECT_NEAR(arrivals[1], 0.002, 1e-12);  // queued behind the first
  EXPECT_EQ(link.bytes_carried(), 2000u);
  EXPECT_EQ(link.transfers(), 2u);
}

TEST(Link, PropagationOverlapsPipelined) {
  // With propagation, the second transfer's delivery is serialization-
  // limited, not propagation-limited: delivery2 = 2*ser + prop.
  Simulator sim;
  Link link(0, 0, 1, 8e6, 0.5);
  std::vector<double> arrivals;
  link.send(sim, 1000, [&] { arrivals.push_back(sim.now()); });
  link.send(sim, 1000, [&] { arrivals.push_back(sim.now()); });
  sim.run();
  EXPECT_NEAR(arrivals[0], 0.501, 1e-9);
  EXPECT_NEAR(arrivals[1], 0.502, 1e-9);
}

TEST(Network, ConnectAndLookup) {
  Network net;
  const NodeId a = net.add_node("a", NodeKind::kEdgeServer, 1e9);
  const NodeId b = net.add_node("b", NodeKind::kEdgeServer, 1e9);
  net.connect(a, b, 1e6, 0.001);
  EXPECT_EQ(net.node_count(), 2u);
  EXPECT_EQ(net.link_count(), 2u);  // bidirectional pair
  EXPECT_EQ(net.link(a, b).from(), a);
  EXPECT_EQ(net.link(b, a).from(), b);
  EXPECT_TRUE(net.find_link(a, b).has_value());
}

TEST(Network, RejectsBadTopology) {
  Network net;
  const NodeId a = net.add_node("a", NodeKind::kCloud, 1e9);
  const NodeId b = net.add_node("b", NodeKind::kCloud, 1e9);
  EXPECT_THROW(net.connect(a, a, 1e6, 0.0), Error);
  net.connect(a, b, 1e6, 0.0);
  EXPECT_THROW(net.connect(a, b, 1e6, 0.0), Error);  // duplicate
  EXPECT_THROW(net.connect(a, 9, 1e6, 0.0), Error);  // unknown node
  const NodeId c = net.add_node("c", NodeKind::kCloud, 1e9);
  EXPECT_THROW(net.link(a, c), Error);  // not adjacent
  EXPECT_FALSE(net.find_link(a, c).has_value());
}

TEST(Network, BytesAccounting) {
  Simulator sim;
  Network net;
  const NodeId a = net.add_node("a", NodeKind::kEdgeServer, 1e9);
  const NodeId b = net.add_node("b", NodeKind::kEdgeServer, 1e9);
  net.connect(a, b, 1e6, 0.0);
  net.link(a, b).send(sim, 500, [] {});
  net.link(b, a).send(sim, 300, [] {});
  sim.run();
  EXPECT_EQ(net.total_bytes_carried(), 800u);
}

TEST(Topology, StandardShape) {
  const StandardTopology topo = build_standard_topology(3, 2);
  // 1 cloud + 3 edges + 6 devices.
  EXPECT_EQ(topo.net->node_count(), 10u);
  EXPECT_EQ(topo.edges.size(), 3u);
  EXPECT_EQ(topo.devices.size(), 3u);
  EXPECT_EQ(topo.devices[0].size(), 2u);
  // Every edge reaches the cloud and every other edge.
  for (std::size_t e = 0; e < 3; ++e) {
    EXPECT_TRUE(topo.net->find_link(topo.edges[e], topo.cloud).has_value());
    for (std::size_t f = 0; f < 3; ++f) {
      if (e != f) {
        EXPECT_TRUE(
            topo.net->find_link(topo.edges[e], topo.edges[f]).has_value());
      }
    }
  }
  // Devices attach to their own edge only.
  EXPECT_TRUE(
      topo.net->find_link(topo.devices[1][0], topo.edges[1]).has_value());
  EXPECT_FALSE(
      topo.net->find_link(topo.devices[1][0], topo.edges[0]).has_value());
}

TEST(Topology, NodeKindsAndCapacities) {
  TopologyConfig cfg;
  cfg.device_flops = 1e9;
  cfg.edge_flops = 2e9;
  cfg.cloud_flops = 3e9;
  const StandardTopology topo = build_standard_topology(1, 1, cfg);
  EXPECT_EQ(topo.net->node(topo.cloud).kind(), NodeKind::kCloud);
  EXPECT_DOUBLE_EQ(topo.net->node(topo.cloud).capacity(), 3e9);
  EXPECT_EQ(topo.net->node(topo.edges[0]).kind(), NodeKind::kEdgeServer);
  EXPECT_DOUBLE_EQ(topo.net->node(topo.devices[0][0]).capacity(), 1e9);
}

TEST(Topology, DeterministicAcrossBuilds) {
  Simulator sim1, sim2;
  const StandardTopology t1 = build_standard_topology(2, 2);
  const StandardTopology t2 = build_standard_topology(2, 2);
  // Same structure: identical ids for the same roles.
  EXPECT_EQ(t1.cloud, t2.cloud);
  EXPECT_EQ(t1.edges, t2.edges);
  EXPECT_EQ(t1.devices, t2.devices);
}

TEST(NodeKindName, AllNamed) {
  EXPECT_EQ(node_kind_name(NodeKind::kDevice), "device");
  EXPECT_EQ(node_kind_name(NodeKind::kEdgeServer), "edge");
  EXPECT_EQ(node_kind_name(NodeKind::kCloud), "cloud");
}

// Property: a chain of N sequential link hops accumulates latency linearly.
class LinkChain : public ::testing::TestWithParam<int> {};

TEST_P(LinkChain, LatencyAccumulates) {
  const int hops = GetParam();
  Simulator sim;
  Network net;
  std::vector<NodeId> nodes;
  for (int i = 0; i <= hops; ++i) {
    nodes.push_back(net.add_node("n" + std::to_string(i),
                                 NodeKind::kEdgeServer, 1e9));
  }
  for (int i = 0; i < hops; ++i) {
    net.connect(nodes[static_cast<std::size_t>(i)],
                nodes[static_cast<std::size_t>(i) + 1], 8e6, 0.002);
  }
  double arrival = -1.0;
  // Relay 1000 bytes along the chain.
  std::function<void(int)> hop = [&](int i) {
    if (i == hops) {
      arrival = sim.now();
      return;
    }
    net.link(nodes[static_cast<std::size_t>(i)],
             nodes[static_cast<std::size_t>(i) + 1])
        .send(sim, 1000, [&, i] { hop(i + 1); });
  };
  hop(0);
  sim.run();
  EXPECT_NEAR(arrival, hops * (0.001 + 0.002), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, LinkChain, ::testing::Values(1, 2, 4, 8));

// ---------------- outage model (the fault plane's link layer) -----------

namespace {
/// A two-node net with one 8 Mbps / 1 ms link; returns the forward link.
struct OutageRig {
  Simulator sim;
  Network net;
  Link* link = nullptr;
  OutageRig() {
    const NodeId a = net.add_node("a", NodeKind::kEdgeServer, 1e9);
    const NodeId b = net.add_node("b", NodeKind::kEdgeServer, 1e9);
    net.connect(a, b, 8e6, 0.001);
    link = &net.link(a, b);
  }
};
}  // namespace

TEST(LinkOutage, QueuePolicyDrainsAfterWindowInFifoOrder) {
  OutageRig rig;
  rig.link->add_outage(0.0, 0.5);
  std::vector<double> arrivals;
  // Two transfers submitted during the outage: both held, then drained in
  // submission order starting exactly at the window's end.
  rig.link->send(rig.sim, 1000, [&] { arrivals.push_back(rig.sim.now()); });
  rig.link->send(rig.sim, 1000, [&] { arrivals.push_back(rig.sim.now()); });
  rig.sim.run();
  ASSERT_EQ(arrivals.size(), 2u);
  // 1000 bytes at 8 Mbps = 1 ms serialization + 1 ms propagation.
  EXPECT_NEAR(arrivals[0], 0.5 + 0.001 + 0.001, 1e-9);
  EXPECT_NEAR(arrivals[1], 0.5 + 0.002 + 0.001, 1e-9);
  // Only the first transfer started inside the window; the second queued
  // behind it on ordinary FIFO grounds, after the link was back up.
  EXPECT_EQ(rig.link->outage_queued(), 1u);
  EXPECT_EQ(rig.link->outage_drops(), 0u);
  EXPECT_EQ(rig.link->transfers(), 2u);
  EXPECT_EQ(rig.link->bytes_carried(), 2000u);
}

TEST(LinkOutage, DropPolicyRefusesAndChargesNothing) {
  OutageRig rig;
  rig.link->add_outage(0.0, 0.5);
  rig.link->set_outage_policy(OutagePolicy::kDrop);
  bool delivered = false;
  const SimTime t = rig.link->send(rig.sim, 1000, [&] { delivered = true; });
  rig.sim.run();
  EXPECT_EQ(t, Link::kDropped);
  EXPECT_FALSE(delivered);  // the handler was never scheduled
  EXPECT_EQ(rig.link->outage_drops(), 1u);
  EXPECT_EQ(rig.link->transfers(), 0u);
  EXPECT_EQ(rig.link->bytes_carried(), 0u);
}

TEST(LinkOutage, AdmissionCheckedAfterFifoQueueing) {
  // A transfer submitted while the link is UP but whose FIFO start time
  // falls inside a later outage window is still subject to the outage:
  // admission is checked at the moment the transfer WOULD start.
  OutageRig rig;
  rig.link->add_outage(0.0005, 0.5);  // opens mid-first-transfer
  std::vector<double> arrivals;
  rig.link->send(rig.sim, 1000, [&] { arrivals.push_back(rig.sim.now()); });
  rig.link->send(rig.sim, 1000, [&] { arrivals.push_back(rig.sim.now()); });
  rig.sim.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_NEAR(arrivals[0], 0.001 + 0.001, 1e-9);  // admitted at t=0, unaffected
  EXPECT_NEAR(arrivals[1], 0.5 + 0.001 + 0.001, 1e-9);  // held to window end
  EXPECT_EQ(rig.link->outage_queued(), 1u);
}

TEST(LinkOutage, FlapScheduleIsPeriodicWithPhase) {
  OutageRig rig;
  rig.link->set_flap_schedule(1.0, 0.25, 0.5);  // down on [0.5, 0.75) mod 1
  EXPECT_FALSE(rig.link->is_down(0.0));
  EXPECT_TRUE(rig.link->is_down(0.5));
  EXPECT_TRUE(rig.link->is_down(0.74));
  EXPECT_FALSE(rig.link->is_down(0.75));
  EXPECT_TRUE(rig.link->is_down(1.6));  // next period
  EXPECT_NEAR(rig.link->next_up(0.6), 0.75, 1e-12);
  EXPECT_NEAR(rig.link->next_up(0.2), 0.2, 1e-12);  // already up
  // Clearing the schedule restores an always-up link.
  rig.link->set_flap_schedule(0.0, 0.0, 0.0);
  EXPECT_FALSE(rig.link->is_down(0.5));
}

TEST(LinkOutage, SinksMirrorCountersForSystemStats) {
  OutageRig rig;
  std::size_t drops = 0;
  std::size_t queued = 0;
  rig.link->set_outage_sinks(&drops, &queued);
  rig.link->add_outage(0.0, 0.1);
  // A refused transfer leaves the link idle, so the second send still
  // starts inside the window and exercises the queue path.
  rig.link->set_outage_policy(OutagePolicy::kDrop);
  rig.link->send(rig.sim, 100, [] {});
  rig.link->set_outage_policy(OutagePolicy::kQueue);
  rig.link->send(rig.sim, 100, [] {});
  rig.sim.run();
  EXPECT_EQ(queued, 1u);
  EXPECT_EQ(drops, 1u);
  EXPECT_EQ(rig.link->outage_queued(), 1u);
  EXPECT_EQ(rig.link->outage_drops(), 1u);
}

TEST(Network, LinkAtWalksEveryLink) {
  Network net;
  const NodeId a = net.add_node("a", NodeKind::kEdgeServer, 1e9);
  const NodeId b = net.add_node("b", NodeKind::kEdgeServer, 1e9);
  const NodeId c = net.add_node("c", NodeKind::kDevice, 1e9);
  net.connect(a, b, 8e6, 0.001);
  net.connect(b, c, 8e6, 0.001);
  ASSERT_EQ(net.link_count(), 4u);  // two connects, forward + reverse each
  for (LinkId id = 0; id < net.link_count(); ++id) {
    EXPECT_EQ(net.link_at(id).id(), id);
  }
  EXPECT_THROW(net.link_at(net.link_count()), Error);
}

TEST(LinkOutage, AdjacentWindowsCoalesceAndNextUpHasNoIterationCap) {
  // Regression: next_up used to walk outage windows one jump per window
  // under a 1000-iteration cap, so >= 1000 ADJACENT windows (a scripted
  // storm emitted per-tick) spuriously tripped the "unbounded schedule"
  // check. add_outage now coalesces adjacent/overlapping windows, so the
  // whole pile-up is one window and one jump.
  OutageRig rig;
  for (int i = 0; i < 1500; ++i) {
    rig.link->add_outage(static_cast<double>(i) * 0.001,
                         static_cast<double>(i + 1) * 0.001);
  }
  EXPECT_EQ(rig.link->outage_window_count(), 1u);
  EXPECT_TRUE(rig.link->is_down(0.0));
  EXPECT_TRUE(rig.link->is_down(1.4999));
  EXPECT_FALSE(rig.link->is_down(1.5));
  EXPECT_NEAR(rig.link->next_up(0.0), 1.5, 1e-12);
  EXPECT_NEAR(rig.link->next_up(0.7321), 1.5, 1e-12);
}

TEST(LinkOutage, ShuffledOverlappingWindowsMatchBruteForceUnion) {
  // Windows inserted out of order, overlapping and nested, must answer
  // is_down/next_up for the exact UNION of the inserted intervals.
  OutageRig rig;
  const std::pair<double, double> windows[] = {
      {5.0, 6.0}, {1.0, 2.0}, {1.5, 3.0}, {0.25, 0.5},
      {2.9, 3.1}, {5.5, 5.6}, {8.0, 8.5}, {3.1, 3.2},
  };
  for (const auto& [s, e] : windows) rig.link->add_outage(s, e);
  // Union: [0.25,0.5) [1,3.2) [5,6) [8,8.5) -> 4 disjoint windows.
  EXPECT_EQ(rig.link->outage_window_count(), 4u);
  for (int k = 0; k < 900; ++k) {
    const double t = static_cast<double>(k) * 0.01;
    bool expect_down = false;
    for (const auto& [s, e] : windows) {
      if (t >= s && t < e) expect_down = true;
    }
    ASSERT_EQ(rig.link->is_down(t), expect_down) << "t=" << t;
  }
  EXPECT_NEAR(rig.link->next_up(1.2), 3.2, 1e-12);
  EXPECT_NEAR(rig.link->next_up(5.5), 6.0, 1e-12);
  EXPECT_NEAR(rig.link->next_up(7.0), 7.0, 1e-12);
}

TEST(Simulator, FarHorizonAndClampedTimersRunInOrder) {
  // Timers beyond the wheel horizon (the overflow far list) and beyond
  // the tick clamp must still execute in exact (time, seq) order,
  // interleaved with near-term work and with re-entrant scheduling after
  // the cursor has jumped far ahead.
  Simulator sim;
  std::vector<int> order;
  const auto mark = [&order](int id) { return [&order, id] { order.push_back(id); }; };
  sim.schedule_at(5e12 + 2.0, mark(7));  // clamp region (tick >= 2^62)
  sim.schedule_at(1e-3, mark(1));
  sim.schedule_at(1e9, mark(4));  // far beyond the 64^8-tick horizon
  sim.schedule_at(5e12 + 1.0, mark(6));
  sim.schedule_at(1e9, mark(5));  // same far instant: scheduling order
  sim.schedule_at(0.0, mark(0));
  sim.schedule_at(2e-3, [&] {
    order.push_back(2);
    sim.schedule_at(2e-3, mark(3));  // re-entrant, same instant
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
  EXPECT_EQ(sim.processed(), 8u);
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_EQ(sim.now(), 5e12 + 2.0);
}

TEST(Link, SendConcurrentMatchesSendTimingAndAccounting) {
  // The lane-scheduled send must reproduce send()'s FIFO serialization
  // math, delivery times, and counters exactly — same sends, issued at
  // the same instants in the same order, through each API.
  OutageRig direct;
  OutageRig lane;
  std::vector<double> direct_arrivals;
  std::vector<double> lane_arrivals;
  const auto issue = [](OutageRig& rig, std::vector<double>& arrivals,
                        bool concurrent) {
    const auto at = [&arrivals, &rig] {
      return [&arrivals, &rig] { arrivals.push_back(rig.sim.now()); };
    };
    // Two back-to-back at t=0 (FIFO on busy_until_), one mid-flight.
    if (concurrent) {
      rig.link->send_concurrent(rig.sim, 1000, at());
      rig.link->send_concurrent(rig.sim, 1000, at());
    } else {
      rig.link->send(rig.sim, 1000, at());
      rig.link->send(rig.sim, 1000, at());
    }
    rig.sim.schedule_at(0.0015, [&rig, &arrivals, at, concurrent] {
      if (concurrent) {
        rig.link->send_concurrent(rig.sim, 2000, at());
      } else {
        rig.link->send(rig.sim, 2000, at());
      }
    });
    rig.sim.run();
  };
  issue(direct, direct_arrivals, false);
  issue(lane, lane_arrivals, true);
  ASSERT_EQ(lane_arrivals.size(), 3u);
  EXPECT_EQ(lane_arrivals, direct_arrivals);
  EXPECT_EQ(lane.link->transfers(), direct.link->transfers());
  EXPECT_EQ(lane.link->bytes_carried(), direct.link->bytes_carried());
}

TEST(Link, SendConcurrentDeliveryOrdersAsIfScheduledAtCallTime) {
  // The delivery event's insertion seq is reserved when send_concurrent is
  // CALLED — where send() would have allocated it — not when the wave
  // commit schedules it. So an event the caller schedules at the delivery
  // timestamp between the call and the wave breaks the tie identically
  // under both APIs: the delivery fires first.
  for (const bool concurrent : {false, true}) {
    OutageRig rig;
    std::vector<int> order;
    const double delivered = rig.link->transfer_time(1000);
    if (concurrent) {
      rig.link->send_concurrent(rig.sim, 1000, [&] { order.push_back(0); });
    } else {
      rig.link->send(rig.sim, 1000, [&] { order.push_back(0); });
    }
    rig.sim.schedule_at(delivered, [&] { order.push_back(1); });
    rig.sim.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1})) << "concurrent=" << concurrent;
  }
}

TEST(Link, SendConcurrentOutagePoliciesMatchSend) {
  // kDrop refuses without scheduling the handler; kQueue shifts the start
  // and counts it — identical to send(), including the external sinks.
  for (const bool concurrent : {false, true}) {
    OutageRig rig;
    std::size_t drops = 0;
    std::size_t queued = 0;
    rig.link->set_outage_sinks(&drops, &queued);
    rig.link->add_outage(0.0, 0.5);
    std::vector<double> arrivals;
    const auto at = [&arrivals, &rig] { arrivals.push_back(rig.sim.now()); };
    bool dropped_delivery = false;
    rig.link->set_outage_policy(OutagePolicy::kDrop);
    if (concurrent) {
      rig.link->send_concurrent(rig.sim, 1000,
                                [&] { dropped_delivery = true; });
    } else {
      rig.link->send(rig.sim, 1000, [&] { dropped_delivery = true; });
    }
    rig.link->set_outage_policy(OutagePolicy::kQueue);
    if (concurrent) {
      rig.link->send_concurrent(rig.sim, 1000, at);
    } else {
      rig.link->send(rig.sim, 1000, at);
    }
    rig.sim.run();
    EXPECT_FALSE(dropped_delivery) << "concurrent=" << concurrent;
    ASSERT_EQ(arrivals.size(), 1u) << "concurrent=" << concurrent;
    EXPECT_NEAR(arrivals[0], 0.5 + 0.001 + 0.001, 1e-9);
    EXPECT_EQ(drops, 1u);
    EXPECT_EQ(queued, 1u);
    EXPECT_EQ(rig.link->outage_drops(), 1u);
    EXPECT_EQ(rig.link->outage_queued(), 1u);
    EXPECT_EQ(rig.link->transfers(), 1u);
    EXPECT_EQ(rig.link->bytes_carried(), 1000u);
  }
}

TEST(Link, SendConcurrentLanesFanOutAcrossLinksUnderAPool) {
  // Sends on different links at one instant form one wave with per-link
  // lanes: with a pool attached the computes fan out, and the result is
  // bit-identical to inline execution (the ThreadPool contract).
  const auto drive = [](common::ThreadPool* pool) {
    Network net;
    const NodeId a = net.add_node("a", NodeKind::kEdgeServer, 1e9);
    const NodeId b = net.add_node("b", NodeKind::kEdgeServer, 1e9);
    const NodeId c = net.add_node("c", NodeKind::kDevice, 1e9);
    const NodeId d = net.add_node("d", NodeKind::kDevice, 1e9);
    net.connect(a, b, 8e6, 0.001);
    net.connect(a, c, 4e6, 0.002);
    net.connect(a, d, 2e6, 0.003);
    Simulator sim;
    sim.set_thread_pool(pool);
    std::vector<std::pair<int, double>> arrivals;
    Link* links[] = {&net.link(a, b), &net.link(a, c), &net.link(a, d)};
    for (int round = 0; round < 3; ++round) {
      for (int l = 0; l < 3; ++l) {
        links[l]->send_concurrent(sim, 500 * (l + 1), [&arrivals, l, &sim] {
          arrivals.emplace_back(l, sim.now());
        });
      }
    }
    sim.run();
    return arrivals;
  };
  common::ThreadPool pool(4);
  const auto inline_arrivals = drive(nullptr);
  const auto pooled_arrivals = drive(&pool);
  ASSERT_EQ(inline_arrivals.size(), 9u);
  EXPECT_EQ(pooled_arrivals, inline_arrivals);
}

}  // namespace
}  // namespace semcache::edge
