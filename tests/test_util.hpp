// Shared helpers for the semcache test suites.
//
// Pulls together the bits every suite was re-inventing inline: a
// seeded-RNG fixture, near-equality comparators for float spans /
// tensors, and the tiny SystemConfig factory used by the trained-system
// suites (test_core, test_failure_injection, test_integration).
#pragma once

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <span>

#include "common/bits.hpp"
#include "common/rng.hpp"
#include "core/system.hpp"
#include "tensor/tensor.hpp"

namespace semcache::test {

/// Offset added to the fuzz-style suites' seeds (test_sim_wheel,
/// test_faults storms). Unset or empty keeps the historical fixed seeds;
/// the nightly CI job sets SEMCACHE_FUZZ_SEED_BASE to the UTC date so
/// every night explores a fresh seed neighborhood. The first call echoes
/// the resolved base into the log so a red nightly is reproducible.
inline std::uint64_t fuzz_seed_base() {
  static const std::uint64_t base = [] {
    const char* env = std::getenv("SEMCACHE_FUZZ_SEED_BASE");
    std::uint64_t v = 0;
    if (env != nullptr) {
      for (const char* p = env; *p >= '0' && *p <= '9'; ++p) {
        v = v * 10 + static_cast<std::uint64_t>(*p - '0');
      }
    }
    std::cout << "[ fuzz   ] SEMCACHE_FUZZ_SEED_BASE=" << v
              << (env == nullptr ? " (unset)" : "") << std::endl;
    return v;
  }();
  return base;
}

/// Fair-coin random bit vector; the standard payload generator for the
/// channel-stack suites.
inline BitVec random_bits(std::size_t n, Rng& rng) {
  BitVec bits(n);
  for (auto& b : bits) b = rng.bernoulli(0.5) ? 1 : 0;
  return bits;
}

/// Fixture for tests whose only setup is a deterministic RNG. Derive and
/// optionally pass a custom seed from the subclass constructor.
class SeededRngTest : public ::testing::Test {
 protected:
  explicit SeededRngTest(std::uint64_t seed = 42) : rng_(seed) {}
  Rng rng_;
};

/// Element-wise near-equality over two float spans. Reports the first
/// offending index, the values, and the sizes on failure so EXPECT_TRUE
/// output is directly actionable.
inline ::testing::AssertionResult AllNear(std::span<const float> a,
                                          std::span<const float> b,
                                          double tol) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure()
           << "size mismatch: " << a.size() << " vs " << b.size();
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double diff = std::abs(static_cast<double>(a[i]) -
                                 static_cast<double>(b[i]));
    if (!(diff <= tol)) {  // NaN-safe: NaN fails the comparison
      return ::testing::AssertionFailure()
             << "element " << i << ": " << a[i] << " vs " << b[i]
             << " (|diff| = " << diff << " > " << tol << ")";
    }
  }
  return ::testing::AssertionSuccess();
}

/// Tensor overload: shapes must match exactly, values up to `tol`.
inline ::testing::AssertionResult AllNear(const tensor::Tensor& a,
                                          const tensor::Tensor& b,
                                          double tol) {
  if (a.shape() != b.shape()) {
    return ::testing::AssertionFailure() << "shape mismatch";
  }
  return AllNear(std::span<const float>(a.data(), a.size()),
                 std::span<const float>(b.data(), b.size()), tol);
}

/// Codec config sized for a generated world, with the small 16/12/32
/// dims the suites standardize on. Vocab sizes and sentence length come
/// from the world so the config is always consistent with it.
inline semantic::CodecConfig codec_for_world(const text::World& world,
                                             std::size_t embed_dim = 16,
                                             std::size_t feature_dim = 12,
                                             std::size_t hidden_dim = 32) {
  semantic::CodecConfig c;
  c.surface_vocab = world.surface_count();
  c.meaning_vocab = world.meaning_count();
  c.sentence_length = world.config().sentence_length;
  c.embed_dim = embed_dim;
  c.feature_dim = feature_dim;
  c.hidden_dim = hidden_dim;
  return c;
}

/// Tiny SystemConfig shared by the trained-system suites: 2 domains,
/// 6-token sentences, and a small 16/12/32 codec that pretrains in around
/// a second. Callers override world size, pretrain steps, triggers, and
/// selector mode per test; only the common skeleton lives here.
inline core::SystemConfig tiny_system_config(std::uint64_t seed) {
  core::SystemConfig config;
  config.seed = seed;
  config.world.num_domains = 2;
  config.world.sentence_length = 6;
  config.codec.embed_dim = 16;
  config.codec.feature_dim = 12;
  config.codec.hidden_dim = 32;
  return config;
}

}  // namespace semcache::test
