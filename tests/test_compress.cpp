// Unit tests for semcache::compress — Huffman optimality and round-trips,
// LZ77 round-trips and corruption tolerance.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "compress/huffman.hpp"
#include "compress/lz77.hpp"

namespace semcache::compress {
namespace {

std::vector<std::uint8_t> random_bytes(std::size_t n, Rng& rng,
                                       int alphabet = 256) {
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) {
    b = static_cast<std::uint8_t>(rng.uniform_int(0, alphabet - 1));
  }
  return out;
}

TEST(Histogram, Counts) {
  const std::vector<std::uint8_t> data = {1, 1, 2, 255};
  const auto h = histogram(data);
  EXPECT_EQ(h[1], 2u);
  EXPECT_EQ(h[2], 1u);
  EXPECT_EQ(h[255], 1u);
  EXPECT_EQ(h[0], 0u);
}

TEST(Huffman, RoundTripSkewedData) {
  Rng rng(1);
  // Zipf-ish skew over a few symbols.
  std::vector<std::uint8_t> data;
  for (int i = 0; i < 4000; ++i) {
    const double u = rng.uniform();
    data.push_back(u < 0.5 ? 'a' : u < 0.75 ? 'b' : u < 0.9 ? 'c' : 'd');
  }
  const auto code = HuffmanCode::build(histogram(data));
  const BitVec bits = code.encode(data);
  EXPECT_EQ(code.decode(bits, data.size()), data);
  // Compression: < 8 bits/symbol on skewed data.
  EXPECT_LT(bits.size(), data.size() * 8);
}

TEST(Huffman, NearEntropyOnSkewedSource) {
  Rng rng(2);
  std::vector<std::uint8_t> data;
  for (int i = 0; i < 20000; ++i) {
    data.push_back(rng.bernoulli(0.9) ? 0 : random_bytes(1, rng, 16)[0]);
  }
  const auto h = histogram(data);
  const auto code = HuffmanCode::build(h);
  const double expected = code.expected_length(h);
  const double entropy = entropy_bits(h);
  EXPECT_GE(expected, entropy - 1e-9);   // Shannon bound
  EXPECT_LE(expected, entropy + 1.0);    // Huffman within 1 bit of entropy
}

TEST(Huffman, HandlesUnseenSymbols) {
  // Build from a histogram that never saw byte 7; encoding it still works.
  ByteHistogram h{};
  h['x'] = 100;
  const auto code = HuffmanCode::build(h);
  const std::vector<std::uint8_t> data = {7, 'x', 7};
  EXPECT_EQ(code.decode(code.encode(data), 3), data);
}

TEST(Huffman, EmptyInput) {
  const auto code = HuffmanCode::build(ByteHistogram{});
  const std::vector<std::uint8_t> empty;
  EXPECT_TRUE(code.encode(empty).empty());
  EXPECT_TRUE(code.decode({}, 0).empty());
}

TEST(Huffman, FrequentSymbolsGetShorterCodes) {
  ByteHistogram h{};
  h['a'] = 10000;
  h['z'] = 1;
  const auto code = HuffmanCode::build(h);
  EXPECT_LT(code.code_length('a'), code.code_length('z'));
}

TEST(Huffman, CorruptedStreamPadsOutput) {
  Rng rng(3);
  const auto data = random_bytes(50, rng);
  const auto code = HuffmanCode::build(histogram(data));
  BitVec bits = code.encode(data);
  bits.resize(bits.size() / 2);  // truncate mid-stream
  const auto out = code.decode(bits, data.size());
  EXPECT_EQ(out.size(), data.size());  // always full length
}

TEST(Huffman, UniformDataStaysNearEightBits) {
  Rng rng(4);
  const auto data = random_bytes(8000, rng);
  const auto h = histogram(data);
  const auto code = HuffmanCode::build(h);
  EXPECT_NEAR(code.expected_length(h), 8.0, 0.3);
}

TEST(Entropy, KnownValues) {
  ByteHistogram h{};
  h[0] = 50;
  h[1] = 50;
  EXPECT_NEAR(entropy_bits(h), 1.0, 1e-9);
  ByteHistogram single{};
  single[9] = 10;
  EXPECT_NEAR(entropy_bits(single), 0.0, 1e-9);
  EXPECT_DOUBLE_EQ(entropy_bits(ByteHistogram{}), 0.0);
}

TEST(Lz77, RoundTripRepetitiveData) {
  std::vector<std::uint8_t> data;
  for (int i = 0; i < 100; ++i) {
    for (const char c : std::string("abcabcabd")) {
      data.push_back(static_cast<std::uint8_t>(c));
    }
  }
  Lz77 lz;
  const BitVec bits = lz.compress(data);
  EXPECT_EQ(lz.decompress(bits), data);
  // Repetitive data compresses well below 8 bits/byte.
  EXPECT_LT(bits.size(), data.size() * 4);
}

TEST(Lz77, RoundTripRandomData) {
  Rng rng(5);
  const auto data = random_bytes(300, rng);
  Lz77 lz;
  EXPECT_EQ(lz.decompress(lz.compress(data)), data);
}

TEST(Lz77, EmptyAndTinyInputs) {
  Lz77 lz;
  const std::vector<std::uint8_t> empty;
  EXPECT_EQ(lz.decompress(lz.compress(empty)), empty);
  const std::vector<std::uint8_t> one = {42};
  EXPECT_EQ(lz.decompress(lz.compress(one)), one);
}

TEST(Lz77, TruncatedStreamPadsToSize) {
  Rng rng(6);
  const auto data = random_bytes(100, rng);
  Lz77 lz;
  BitVec bits = lz.compress(data);
  bits.resize(bits.size() / 3);
  // Keep the 32-bit header intact.
  ASSERT_GE(bits.size(), 32u);
  const auto out = lz.decompress(bits);
  EXPECT_EQ(out.size(), data.size());
}

TEST(Lz77, HeaderTooShortThrows) {
  Lz77 lz;
  BitVec tiny(16, 0);
  EXPECT_THROW(lz.decompress(tiny), Error);
}

TEST(Lz77, ConfigValidation) {
  Lz77Config bad;
  bad.window_bits = 0;
  EXPECT_THROW(Lz77{bad}, Error);
  bad = {};
  bad.min_match = 1;
  EXPECT_THROW(Lz77{bad}, Error);
}

class Lz77Sweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Lz77Sweep, RoundTripVariedSizes) {
  Rng rng(GetParam());
  // Mixed content: text-like runs plus random noise.
  std::vector<std::uint8_t> data;
  for (std::size_t i = 0; i < GetParam() * 17 + 3; ++i) {
    data.push_back(rng.bernoulli(0.6)
                       ? static_cast<std::uint8_t>('a' + (i % 5))
                       : random_bytes(1, rng)[0]);
  }
  Lz77 lz;
  EXPECT_EQ(lz.decompress(lz.compress(data)), data);
}

INSTANTIATE_TEST_SUITE_P(Sweep, Lz77Sweep, ::testing::Range<std::size_t>(1, 9));

}  // namespace
}  // namespace semcache::compress
