// Tests for the bimodal (text + scene) codec extension (§III-B): shapes,
// gradients, and the headline property — scene context lets a POOLED model
// resolve polysemy that text alone cannot.
#include <gtest/gtest.h>

#include "metrics/ngram.hpp"
#include "metrics/stats.hpp"
#include "nn/optimizer.hpp"
#include "semantic/bimodal.hpp"
#include "semantic/trainer.hpp"

namespace semcache::semantic {
namespace {

BimodalConfig small_config(const text::World& world,
                           const SceneSampler& scenes) {
  BimodalConfig bc;
  bc.text.surface_vocab = world.surface_count();
  bc.text.meaning_vocab = world.meaning_count();
  bc.text.sentence_length = world.config().sentence_length;
  bc.text.embed_dim = 16;
  bc.text.feature_dim = bc.text.sentence_length * 2;
  bc.text.hidden_dim = 32;
  bc.scene_vocab = scenes.scene_vocab();
  bc.scene_embed_dim = 8;
  bc.scene_feature_dim = 4;
  return bc;
}

TEST(SceneSampler, TagsLandInDomainBlock) {
  SceneConfig sc;
  sc.off_domain_prob = 0.0;
  SceneSampler sampler(3, sc);
  Rng rng(1);
  for (std::size_t d = 0; d < 3; ++d) {
    for (int i = 0; i < 20; ++i) {
      for (const auto tag : sampler.sample(d, rng)) {
        EXPECT_GE(tag, static_cast<std::int32_t>(d * sc.tags_per_domain));
        EXPECT_LT(tag, static_cast<std::int32_t>((d + 1) * sc.tags_per_domain));
      }
    }
  }
}

TEST(SceneSampler, OffDomainClutterAppears) {
  SceneConfig sc;
  sc.off_domain_prob = 0.5;
  SceneSampler sampler(2, sc);
  Rng rng(2);
  std::size_t off = 0, total = 0;
  for (int i = 0; i < 100; ++i) {
    for (const auto tag : sampler.sample(0, rng)) {
      ++total;
      if (tag >= static_cast<std::int32_t>(sc.tags_per_domain)) ++off;
    }
  }
  EXPECT_NEAR(static_cast<double>(off) / static_cast<double>(total), 0.5,
              0.1);
}

TEST(SceneSampler, Validation) {
  SceneConfig bad;
  bad.off_domain_prob = 1.0;
  EXPECT_THROW(SceneSampler(2, bad), Error);
  EXPECT_THROW(SceneSampler(0, SceneConfig{}), Error);
}

class BimodalTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(31);
    text::WorldConfig wc;
    wc.num_domains = 2;
    wc.concepts_per_domain = 12;
    wc.num_polysemous = 10;
    wc.polysemous_prob = 0.35;
    wc.sentence_length = 6;
    world_ = new text::World(text::World::generate(wc, rng));
    scenes_ = new SceneSampler(2, SceneConfig{});
  }
  static void TearDownTestSuite() {
    delete world_;
    delete scenes_;
    world_ = nullptr;
    scenes_ = nullptr;
  }
  static text::World* world_;
  static SceneSampler* scenes_;
};

text::World* BimodalTest::world_ = nullptr;
SceneSampler* BimodalTest::scenes_ = nullptr;

TEST_F(BimodalTest, EncodeDecodeShapes) {
  Rng rng(32);
  BimodalCodec codec(small_config(*world_, *scenes_), rng);
  Rng srng(33);
  const auto msg = world_->sample_sentence(0, srng);
  const auto scene = scenes_->sample(0, srng);
  const auto feature = codec.encode(msg.surface, scene);
  EXPECT_EQ(feature.dim(1), 6u * 2u + 4u);
  for (std::size_t i = 0; i < feature.size(); ++i) {
    EXPECT_LE(std::abs(feature.at(i)), 1.0f);
  }
  const auto decoded = codec.decode(feature);
  EXPECT_EQ(decoded.size(), 6u);
}

TEST_F(BimodalTest, GradCheck) {
  Rng rng(34);
  BimodalCodec codec(small_config(*world_, *scenes_), rng);
  Rng srng(35);
  const auto msg = world_->sample_sentence(0, srng);
  const auto scene = scenes_->sample(0, srng);
  auto params = codec.parameters();
  auto loss_fn = [&]() -> double {
    return codec.forward_loss(msg.surface, scene, msg.meanings);
  };
  nn::Optimizer::zero_grad(params.params());
  loss_fn();
  codec.backward();
  const auto result = nn::gradcheck(loss_fn, params.params(), 1e-3, 25);
  // ReLU kink straddles inflate a handful of elements (bias perturbations
  // shift every row's pre-activation across the kink); a systematic
  // backward bug would corrupt whole tensors, not ~2% of elements. Require
  // the overwhelming majority to match tightly.
  EXPECT_TRUE(result.mostly_ok(/*allowed=*/10, /*max_abs=*/0.2))
      << "rel err " << result.max_rel_error << " above_tol "
      << result.above_tol << "/" << result.checked;
}

TEST_F(BimodalTest, PooledBimodalResolvesPolysemyTextOnlyCannot) {
  // Train a pooled TEXT-ONLY codec and a pooled BIMODAL codec on both
  // domains; compare accuracy on polysemous positions. Text-only has no
  // way to pick the sense; the scene vector disambiguates.
  const BimodalConfig bc = small_config(*world_, *scenes_);
  Rng rng_t(36), rng_b(36);
  SemanticCodec text_only(bc.text, rng_t);
  BimodalCodec bimodal(bc, rng_b);

  const std::size_t kSteps = 6000;
  {
    nn::Adam opt_t(3e-3), opt_b(3e-3);
    nn::ParameterSet pt = text_only.parameters();
    nn::ParameterSet pb = bimodal.parameters();
    Rng trng(37);
    for (std::size_t step = 0; step < kSteps; ++step) {
      const auto d = static_cast<std::size_t>(trng.uniform_int(0, 1));
      const auto msg = world_->sample_sentence(d, trng);
      const auto scene = scenes_->sample(d, trng);
      nn::Optimizer::zero_grad(pt.params());
      text_only.forward_loss(msg.surface, msg.meanings);
      text_only.backward();
      nn::Optimizer::clip_grad_norm(pt.params(), 5.0);
      opt_t.step(pt.params());
      nn::Optimizer::zero_grad(pb.params());
      bimodal.forward_loss(msg.surface, scene, msg.meanings);
      bimodal.backward();
      nn::Optimizer::clip_grad_norm(pb.params(), 5.0);
      opt_b.step(pb.params());
    }
  }

  Rng erng(38);
  metrics::OnlineStats text_poly, bim_poly;
  for (int i = 0; i < 300; ++i) {
    const auto d = static_cast<std::size_t>(erng.uniform_int(0, 1));
    const auto msg = world_->sample_sentence(d, erng);
    const auto scene = scenes_->sample(d, erng);
    const auto t_dec = text_only.reconstruct(msg.surface);
    const auto b_dec = bimodal.decode(bimodal.encode(msg.surface, scene));
    const auto& poly = world_->polysemous_meanings(d);
    for (std::size_t p = 0; p < msg.meanings.size(); ++p) {
      if (std::find(poly.begin(), poly.end(), msg.meanings[p]) == poly.end()) {
        continue;
      }
      text_poly.add(t_dec[p] == msg.meanings[p] ? 1.0 : 0.0);
      bim_poly.add(b_dec[p] == msg.meanings[p] ? 1.0 : 0.0);
    }
  }
  ASSERT_GT(text_poly.count(), 100u);
  EXPECT_GT(bim_poly.mean(), text_poly.mean() + 0.15)
      << "text " << text_poly.mean() << " bimodal " << bim_poly.mean();
}

TEST_F(BimodalTest, RejectsMalformedInput) {
  Rng rng(39);
  BimodalCodec codec(small_config(*world_, *scenes_), rng);
  const std::vector<std::int32_t> short_text = {1, 2};
  const std::vector<std::int32_t> scene = {0, 1};
  EXPECT_THROW(codec.encode(short_text, scene), Error);
  const std::vector<std::int32_t> text = {1, 2, 3, 4, 5, 6};
  EXPECT_THROW(codec.encode(text, {}), Error);
}

}  // namespace
}  // namespace semcache::semantic
