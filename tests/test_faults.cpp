// The deterministic fault plane, pinned end to end.
//
// Three contracts:
//
//  1. IDENTITY-KEYED COINS — every fault decision is a pure function of
//     (seed, identity of the thing failing): sync coins key on (user,
//     domain, version, attempt), stalls on (shard, wave), flap phases on
//     link id. No coin ever consumes a globally ordered RNG stream, so
//     fault draws cannot depend on thread interleaving or shard layout.
//
//  2. WAVES SURVIVE FAULTS — the determinism payoff. Under an active
//     fault storm (flapping links + sync loss + corruption + duplication)
//     transmit_pairs waves and sharded flushes stay cross-pair parallel
//     and produce byte-identical reports, stats, and weights for any
//     thread count and any shard count. There is no sequential fallback
//     left to fall back to.
//
//  3. GRACEFUL DEGRADATION — a stalled shard's pairs are served from the
//     frozen general-model replicas, flagged `degraded`, counted in
//     SystemStats::degraded_serves — never a hang, never a throw.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "core/dispatcher.hpp"
#include "core/sharded.hpp"
#include "core/system.hpp"
#include "faults/fault_plane.hpp"
#include "test_util.hpp"

namespace semcache::core {
namespace {

// ---------------------- FaultPlane unit contracts ----------------------

FaultConfig storm_faults() {
  FaultConfig f;
  f.seed = 0xFA17;
  f.sync_loss = 0.35;
  f.sync_corrupt = 0.30;
  f.sync_duplicate = 0.25;
  f.retry_timeout_s = 0.01;
  f.retry_backoff = 2.0;
  f.max_attempts = 3;
  f.link_flap_period_s = 0.05;
  f.link_flap_down_s = 0.01;
  return f;
}

TEST(FaultPlane, CoinsArePureFunctionsOfIdentity) {
  const FaultPlane a(storm_faults());
  const FaultPlane b(storm_faults());  // distinct instance, same config
  for (std::uint64_t version = 1; version <= 32; ++version) {
    for (std::uint64_t attempt = 1; attempt <= 4; ++attempt) {
      EXPECT_EQ(a.drop_sync("alice", 1, version, attempt),
                b.drop_sync("alice", 1, version, attempt));
      EXPECT_EQ(a.corrupt_sync("alice", 1, version, attempt),
                b.corrupt_sync("alice", 1, version, attempt));
      EXPECT_EQ(a.duplicate_sync("alice", 1, version, attempt),
                b.duplicate_sync("alice", 1, version, attempt));
    }
  }
  for (std::size_t shard = 0; shard < 4; ++shard) {
    for (std::size_t wave = 0; wave < 16; ++wave) {
      EXPECT_EQ(a.stall_shard(shard, wave), b.stall_shard(shard, wave));
    }
  }
  for (edge::LinkId link = 0; link < 8; ++link) {
    EXPECT_EQ(a.flap_phase_s(link), b.flap_phase_s(link));
    EXPECT_GE(a.flap_phase_s(link), 0.0);
    EXPECT_LT(a.flap_phase_s(link), storm_faults().link_flap_period_s);
  }
  // A different seed draws a different coin sequence somewhere.
  FaultConfig reseeded = storm_faults();
  reseeded.seed = 0xBEEF;
  const FaultPlane c(reseeded);
  bool diverged = false;
  for (std::uint64_t version = 1; version <= 64 && !diverged; ++version) {
    diverged = a.drop_sync("alice", 1, version, 1) !=
               c.drop_sync("alice", 1, version, 1);
  }
  EXPECT_TRUE(diverged);
}

TEST(FaultPlane, ProbabilityEndpointsAreExact) {
  FaultConfig always = storm_faults();
  always.sync_loss = 1.0;
  always.sync_corrupt = 1.0;
  always.sync_duplicate = 1.0;
  always.shard_stall = 1.0;
  FaultConfig never = storm_faults();
  never.sync_loss = 0.0;
  never.sync_corrupt = 0.0;
  never.sync_duplicate = 0.0;
  never.shard_stall = 0.0;
  const FaultPlane hot(always);
  const FaultPlane cold(never);
  for (std::uint64_t v = 1; v <= 100; ++v) {
    EXPECT_TRUE(hot.drop_sync("u", 0, v, 1));
    EXPECT_TRUE(hot.corrupt_sync("u", 0, v, 1));
    EXPECT_TRUE(hot.duplicate_sync("u", 0, v, 1));
    EXPECT_TRUE(hot.stall_shard(v % 7, v));
    EXPECT_FALSE(cold.drop_sync("u", 0, v, 1));
    EXPECT_FALSE(cold.corrupt_sync("u", 0, v, 1));
    EXPECT_FALSE(cold.duplicate_sync("u", 0, v, 1));
    EXPECT_FALSE(cold.stall_shard(v % 7, v));
  }
}

TEST(FaultPlane, CorruptBytesIsDeterministicAndNonTrivial) {
  const FaultPlane plane(storm_faults());
  std::vector<std::uint8_t> original(64);
  for (std::size_t i = 0; i < original.size(); ++i) {
    original[i] = static_cast<std::uint8_t>(i);
  }
  auto once = original;
  auto twice = original;
  plane.corrupt_bytes(once, "alice", 2, 9, 1);
  plane.corrupt_bytes(twice, "alice", 2, 9, 1);
  EXPECT_EQ(once, twice);      // same identity -> same mangling
  EXPECT_NE(once, original);   // and it really mangles
  auto other = original;
  plane.corrupt_bytes(other, "alice", 2, 9, 2);  // next attempt differs
  EXPECT_NE(other, once);
  std::vector<std::uint8_t> empty;
  plane.corrupt_bytes(empty, "alice", 2, 9, 1);  // no-op, no crash
  EXPECT_TRUE(empty.empty());
}

TEST(FaultPlane, RetryDelayBacksOffExponentially) {
  const FaultPlane plane(storm_faults());
  EXPECT_DOUBLE_EQ(plane.retry_delay_s(1), 0.01);
  EXPECT_DOUBLE_EQ(plane.retry_delay_s(2), 0.02);
  EXPECT_DOUBLE_EQ(plane.retry_delay_s(3), 0.04);
  EXPECT_DOUBLE_EQ(plane.retry_delay_s(4), 0.08);
}

TEST(FaultPlane, ConfigValidated) {
  FaultConfig bad = storm_faults();
  bad.sync_loss = 1.5;
  EXPECT_THROW(FaultPlane{bad}, Error);
  bad = storm_faults();
  bad.sync_corrupt = -0.1;
  EXPECT_THROW(FaultPlane{bad}, Error);
  bad = storm_faults();
  bad.retry_timeout_s = 0.0;
  EXPECT_THROW(FaultPlane{bad}, Error);
  bad = storm_faults();
  bad.retry_backoff = 0.5;
  EXPECT_THROW(FaultPlane{bad}, Error);
  bad = storm_faults();
  bad.max_attempts = 0;
  EXPECT_THROW(FaultPlane{bad}, Error);
  bad = storm_faults();
  bad.link_flap_down_s = bad.link_flap_period_s + 1.0;
  EXPECT_THROW(FaultPlane{bad}, Error);
  // SystemConfig carries the fault config; build() runs the validation.
  SystemConfig config = test::tiny_system_config(3);
  config.faults.sync_loss = 2.0;
  EXPECT_THROW(SemanticEdgeSystem::build(config), Error);
}

// ------------------- waves survive faults (the payoff) ------------------

SystemConfig faulted_config(std::uint64_t seed, std::size_t num_threads) {
  SystemConfig config = test::tiny_system_config(seed);
  config.pretrain.steps = 150;  // lightly trained: determinism, not accuracy
  config.buffer_trigger = 2;    // fine-tunes (and sync ships) fire mid-wave
  config.buffer_capacity = 32;
  config.finetune_epochs = 2;
  config.num_edges = 2;
  config.num_threads = num_threads;
  config.faults = storm_faults();
  // kQueue keeps delivery chains alive through outages, so every message
  // completes and the identity contract can cover the whole matrix.
  config.faults.outage_policy = edge::OutagePolicy::kQueue;
  return config;
}

struct PairSpec {
  std::string sender;
  std::string receiver;
  std::vector<std::size_t> domains;
};

// Multi-sender fan-out with shared-sender merges and mid-wave fine-tune
// pressure — the same shapes test_sharded pins fault-free. Every pair is
// CROSS-edge (a, c live on edge 0; b, d on edge 1) so every triggered
// update ships a sync over the flapping backbone and draws fault coins;
// intra-edge syncs apply in place and would dodge the storm. Senders
// {a, c, d} split 2 ways at K = 2 and 3 ways at K = 3.
const std::vector<std::vector<PairSpec>> kWaves = {
    {{"a", "b", {0, 1, 0}}, {"c", "d", {1, 0}}, {"d", "c", {0, 0, 1}}},
    {{"a", "b", {0, 0}}, {"a", "d", {0, 0, 1}}, {"c", "b", {1, 1, 1, 1}}},
    {{"d", "a", {1, 0, 1, 0}}, {"c", "d", {0}}, {"a", "b", {0, 1}}},
};

struct ServedMessage {
  TransmitReport report;
  int completions = 0;
};

std::vector<std::vector<std::vector<ServedMessage>>> drive(
    ParallelDispatcher& dispatcher,
    const std::vector<std::vector<std::vector<text::Sentence>>>& sentences,
    edge::Simulator* run_after_flush) {
  std::vector<std::vector<std::vector<ServedMessage>>> served(kWaves.size());
  for (std::size_t w = 0; w < kWaves.size(); ++w) {
    for (std::size_t p = 0; p < kWaves[w].size(); ++p) {
      dispatcher.enqueue(kWaves[w][p].sender, kWaves[w][p].receiver,
                         sentences[w][p]);
    }
    served[w].resize(dispatcher.queued_pairs());
    dispatcher.flush([&served, w](std::size_t pair, std::size_t index,
                                  TransmitReport report) {
      auto& slot_list = served[w][pair];
      if (slot_list.size() <= index) slot_list.resize(index + 1);
      slot_list[index].report = std::move(report);
      ++slot_list[index].completions;
    });
    if (run_after_flush != nullptr) run_after_flush->run();
  }
  return served;
}

void expect_data_plane_equal(const TransmitReport& ref,
                             const TransmitReport& got, bool compare_latency,
                             const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(ref.domain_true, got.domain_true);
  EXPECT_EQ(ref.domain_selected, got.domain_selected);
  EXPECT_EQ(ref.selection_correct, got.selection_correct);
  EXPECT_EQ(ref.decoded_meanings, got.decoded_meanings);
  EXPECT_EQ(ref.token_accuracy, got.token_accuracy);  // exact doubles
  EXPECT_EQ(ref.exact, got.exact);
  EXPECT_EQ(ref.mismatch, got.mismatch);
  EXPECT_EQ(ref.payload_bytes, got.payload_bytes);
  EXPECT_EQ(ref.airtime_bits, got.airtime_bits);
  EXPECT_EQ(ref.sync_bytes, got.sync_bytes);
  EXPECT_EQ(ref.triggered_update, got.triggered_update);
  EXPECT_EQ(ref.established_user_model, got.established_user_model);
  EXPECT_EQ(ref.general_cache_hit, got.general_cache_hit);
  EXPECT_EQ(ref.degraded, got.degraded);
  if (compare_latency) {
    EXPECT_EQ(ref.latency_s, got.latency_s);
  }
}

void expect_fault_stats_equal(const SystemStats& ref, const SystemStats& got,
                              bool compare_outages) {
  EXPECT_EQ(ref.messages, got.messages);
  EXPECT_EQ(ref.feature_bytes, got.feature_bytes);
  EXPECT_EQ(ref.sync_bytes, got.sync_bytes);
  EXPECT_EQ(ref.updates, got.updates);
  EXPECT_EQ(ref.selection_errors, got.selection_errors);
  EXPECT_EQ(ref.sync_drops, got.sync_drops);
  EXPECT_EQ(ref.sync_retries, got.sync_retries);
  EXPECT_EQ(ref.sync_corrupt_drops, got.sync_corrupt_drops);
  EXPECT_EQ(ref.sync_duplicates, got.sync_duplicates);
  EXPECT_EQ(ref.sync_expired, got.sync_expired);
  EXPECT_EQ(ref.sync_ack_bytes, got.sync_ack_bytes);
  EXPECT_EQ(ref.full_resyncs, got.full_resyncs);
  EXPECT_EQ(ref.resync_bytes, got.resync_bytes);
  EXPECT_EQ(ref.degraded_serves, got.degraded_serves);
  if (compare_outages) {
    // Outage counters are keyed by simulated time, so they are part of
    // the contract only where the clocks coincide (thread variants and
    // K = 1, where the deployment IS the reference).
    EXPECT_EQ(ref.outage_drops, got.outage_drops);
    EXPECT_EQ(ref.outage_queued, got.outage_queued);
  }
}

/// THE acceptance matrix: under an active fault storm, every (threads, K)
/// variant reproduces the reference byte for byte — reports, stats, and
/// decoder weights — with waves fully parallel (no fallback exists).
TEST(FaultStorm, WavesStayByteIdenticalAcrossThreadsAndShards) {
  unsetenv("SEMCACHE_THREADS");
  unsetenv("SEMCACHE_SHARDS");

  // Nightly CI rotates the storm seed (SEMCACHE_FUZZ_SEED_BASE = UTC
  // date, echoed into the log); the default base 0 keeps the historical
  // seed 2077.
  const std::uint64_t storm_seed = 2077 + test::fuzz_seed_base();
  auto reference = SemanticEdgeSystem::build(faulted_config(storm_seed, 0));
  const std::vector<std::pair<std::string, std::size_t>> users = {
      {"a", 0}, {"b", 1}, {"c", 0}, {"d", 1}};
  for (const auto& [name, edge] : users) {
    reference->register_user(name, edge, nullptr);
  }
  std::vector<std::vector<std::vector<text::Sentence>>> sentences(
      kWaves.size());
  for (std::size_t w = 0; w < kWaves.size(); ++w) {
    sentences[w].resize(kWaves[w].size());
    for (std::size_t p = 0; p < kWaves[w].size(); ++p) {
      for (const std::size_t d : kWaves[w][p].domains) {
        sentences[w][p].push_back(
            reference->sample_message(kWaves[w][p].sender, d));
      }
    }
  }
  ParallelDispatcher ref_dispatcher(*reference);
  const auto ref_served =
      drive(ref_dispatcher, sentences, &reference->simulator());

  // The storm must actually have raged, and every injected fault must be
  // accounted for in stats — goodput loss is auditable, never silent.
  const SystemStats& ref_stats = reference->stats();
  ASSERT_GT(ref_stats.updates, 0u);
  EXPECT_GT(ref_stats.sync_drops, 0u);
  EXPECT_GT(ref_stats.sync_retries, 0u);
  EXPECT_GT(ref_stats.sync_corrupt_drops, 0u);
  EXPECT_GT(ref_stats.sync_ack_bytes, 0u);
  EXPECT_GT(ref_stats.outage_queued, 0u);  // the links really flapped

  // threads x shards: {0, 1, 2, 4} x {1, 2, 3} sampled so every thread
  // count and every shard count appears at least once.
  const std::vector<std::pair<std::size_t, std::size_t>> variants = {
      {1, 1}, {1, 4}, {2, 0}, {2, 2}, {3, 4}};  // (shards, threads)
  for (const auto& [num_shards, threads] : variants) {
    SCOPED_TRACE("K=" + std::to_string(num_shards) +
                 " threads=" + std::to_string(threads));
    auto sharded = ShardedEdgeServing::build(faulted_config(storm_seed, threads),
                                             num_shards);
    for (const auto& [name, edge] : users) {
      sharded->register_user(name, edge, nullptr);
    }
    ParallelDispatcher dispatcher(*sharded);
    const auto served = drive(dispatcher, sentences, nullptr);

    ASSERT_EQ(served.size(), ref_served.size());
    for (std::size_t w = 0; w < served.size(); ++w) {
      ASSERT_EQ(served[w].size(), ref_served[w].size());
      for (std::size_t p = 0; p < served[w].size(); ++p) {
        ASSERT_EQ(served[w][p].size(), ref_served[w][p].size());
        for (std::size_t i = 0; i < served[w][p].size(); ++i) {
          EXPECT_EQ(served[w][p][i].completions, 1);
          expect_data_plane_equal(
              ref_served[w][p][i].report, served[w][p][i].report,
              /*compare_latency=*/num_shards == 1,
              "wave " + std::to_string(w) + " pair " + std::to_string(p) +
                  " message " + std::to_string(i));
        }
      }
    }
    expect_fault_stats_equal(ref_stats, sharded->stats(),
                             /*compare_outages=*/num_shards == 1);
    EXPECT_EQ(sharded->stats().degraded_serves, 0u);  // no stalls injected

    // Decoder weights converge to the same bytes on every variant: the
    // storm's surviving syncs (and gap resyncs) applied identically.
    for (const std::string sender : {"a", "c", "d"}) {
      SemanticEdgeSystem& owner = sharded->owning_shard(sender);
      for (std::size_t domain = 0; domain < 2; ++domain) {
        for (std::size_t edge = 0; edge < 2; ++edge) {
          UserModelSlot* ref_slot =
              reference->edge_state(edge).find_slot(sender, domain);
          UserModelSlot* got_slot =
              owner.edge_state(edge).find_slot(sender, domain);
          ASSERT_EQ(ref_slot == nullptr, got_slot == nullptr);
          if (ref_slot == nullptr) continue;
          SCOPED_TRACE("slot " + sender + "/" + std::to_string(domain) +
                       " edge " + std::to_string(edge));
          EXPECT_EQ(ref_slot->send_version, got_slot->send_version);
          EXPECT_EQ(ref_slot->recv_version.current(),
                    got_slot->recv_version.current());
          nn::ParameterSet ref_params = ref_slot->model->parameters();
          nn::ParameterSet got_params = got_slot->model->parameters();
          EXPECT_TRUE(ref_params.values_equal(got_params));
        }
      }
    }
  }
}

// ----------------------- recovery accounting ---------------------------

/// p = 1 loss: the full retry ladder runs and expires for every update;
/// healing the channel triggers exactly the documented gap resync.
TEST(FaultRecovery, FullLossLadderIsExactlyAccounted) {
  unsetenv("SEMCACHE_THREADS");
  SystemConfig config = test::tiny_system_config(31);
  config.pretrain.steps = 150;
  config.buffer_trigger = 2;
  config.finetune_epochs = 1;
  config.num_edges = 2;
  config.oracle_selection = true;
  config.faults.sync_loss = 1.0;
  config.faults.max_attempts = 3;
  auto system = SemanticEdgeSystem::build(config);
  system->register_user("u", 0, nullptr);
  system->register_user("v", 1, nullptr);

  for (int i = 0; i < 4; ++i) {
    text::Sentence msg = system->sample_message("u", 0);
    msg.domain = 0;
    system->transmit("u", "v", msg);
  }
  const std::size_t updates = system->stats().updates;
  ASSERT_GE(updates, 1u);
  EXPECT_EQ(system->stats().sync_drops, updates * 3);
  EXPECT_EQ(system->stats().sync_retries, updates * 2);
  EXPECT_EQ(system->stats().sync_expired, updates);
  EXPECT_EQ(system->stats().sync_ack_bytes, 0u);  // nothing ever arrived
  EXPECT_FALSE(system->replicas_in_sync("u", 0, 0, 1));

  system->set_sync_loss_probability(0.0);
  for (int i = 0; i < 2; ++i) {
    text::Sentence msg = system->sample_message("u", 0);
    msg.domain = 0;
    system->transmit("u", "v", msg);
  }
  EXPECT_GE(system->stats().full_resyncs, 1u);
  EXPECT_GT(system->stats().resync_bytes, 0u);
  // p = 0 re-enters the fault-free fast path, whose wire framing carries
  // no acks — the retry timer (what acks arm) only exists under faults.
  EXPECT_EQ(system->stats().sync_ack_bytes, 0u);
  EXPECT_TRUE(system->replicas_in_sync("u", 0, 0, 1));
}

// ------------------------ graceful degradation --------------------------

TEST(Degradation, StalledShardsServeDegradedNeverThrow) {
  unsetenv("SEMCACHE_THREADS");
  SystemConfig config = faulted_config(99, 0);
  config.faults = {};  // quiet links/syncs; isolate the stall machinery
  config.faults.shard_stall = 1.0;  // every shard stalls on every wave
  auto sharded = ShardedEdgeServing::build(config, 2);
  auto twin = ShardedEdgeServing::build(config, 2);
  for (auto* deployment : {sharded.get(), twin.get()}) {
    deployment->register_user("a", 0, nullptr);
    deployment->register_user("c", 1, nullptr);
    deployment->register_user("d", 0, nullptr);
  }

  std::vector<std::vector<text::Sentence>> batches(3);
  const std::vector<std::pair<std::string, std::string>> pairs = {
      {"a", "c"}, {"c", "d"}, {"d", "a"}};
  for (std::size_t p = 0; p < pairs.size(); ++p) {
    for (int i = 0; i < 3; ++i) {
      batches[p].push_back(sharded->sample_message(pairs[p].first, i % 2));
    }
  }

  const auto run = [&](ShardedEdgeServing& deployment) {
    ParallelDispatcher dispatcher(deployment);
    for (std::size_t p = 0; p < pairs.size(); ++p) {
      dispatcher.enqueue(pairs[p].first, pairs[p].second, batches[p]);
    }
    std::vector<std::vector<TransmitReport>> reports(pairs.size());
    dispatcher.flush([&reports](std::size_t pair, std::size_t index,
                                TransmitReport report) {
      auto& list = reports[pair];
      if (list.size() <= index) list.resize(index + 1);
      list[index] = std::move(report);
    });
    return reports;
  };

  const auto reports = run(*sharded);
  std::size_t total = 0;
  for (std::size_t p = 0; p < reports.size(); ++p) {
    ASSERT_EQ(reports[p].size(), batches[p].size()) << "pair " << p;
    for (const TransmitReport& r : reports[p]) {
      EXPECT_TRUE(r.degraded);
      EXPECT_FALSE(r.triggered_update);  // frozen generals never train
      EXPECT_GT(r.latency_s, 0.0);       // the timing plane still ran
      ++total;
    }
  }
  EXPECT_EQ(sharded->stats().degraded_serves, total);
  EXPECT_EQ(sharded->stats().messages, total);
  EXPECT_EQ(sharded->stats().updates, 0u);
  // Degraded serving leaves NO serving state behind: no slots, no
  // buffers, no materialized models.
  EXPECT_EQ(sharded->memory_footprint().slots, 0u);
  EXPECT_EQ(sharded->memory_footprint().user_model_bytes, 0u);

  // And it is deterministic: an identical twin produces identical bytes.
  const auto twin_reports = run(*twin);
  ASSERT_EQ(twin_reports.size(), reports.size());
  for (std::size_t p = 0; p < reports.size(); ++p) {
    ASSERT_EQ(twin_reports[p].size(), reports[p].size());
    for (std::size_t i = 0; i < reports[p].size(); ++i) {
      expect_data_plane_equal(reports[p][i], twin_reports[p][i],
                              /*compare_latency=*/true,
                              "degraded pair " + std::to_string(p) +
                                  " message " + std::to_string(i));
    }
  }
}

TEST(Degradation, DropPolicyOutagesLoseCompletionsButNeverHang) {
  unsetenv("SEMCACHE_THREADS");
  SystemConfig config = faulted_config(7, 0);
  config.faults = {};
  config.faults.link_flap_period_s = 1.0;
  config.faults.link_flap_down_s = 1.0;  // always down
  config.faults.outage_policy = edge::OutagePolicy::kDrop;
  auto system = SemanticEdgeSystem::build(config);
  system->register_user("a", 0, nullptr);
  system->register_user("b", 1, nullptr);

  ParallelDispatcher dispatcher(*system);
  dispatcher.enqueue("a", "b", {system->sample_message("a", 0),
                                system->sample_message("a", 1)});
  std::size_t completions = 0;
  dispatcher.flush(
      [&completions](std::size_t, std::size_t, TransmitReport) {
        ++completions;
      });
  system->simulator().run();
  // Every delivery chain died at its first (dropped) uplink hop: no
  // completions, no hang, and every refused send is accounted.
  EXPECT_EQ(completions, 0u);
  EXPECT_EQ(system->stats().messages, 2u);  // the data plane still served
  EXPECT_GT(system->stats().outage_drops, 0u);
  EXPECT_EQ(system->stats().outage_queued, 0u);
}

}  // namespace
}  // namespace semcache::core
