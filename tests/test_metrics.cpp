// Unit tests for semcache::metrics — online statistics, percentiles,
// confusion matrices, tables, and the n-gram fidelity scores.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "metrics/confusion.hpp"
#include "metrics/ngram.hpp"
#include "metrics/stats.hpp"
#include "metrics/table.hpp"

namespace semcache::metrics {
namespace {

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, KnownValues) {
  OnlineStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStats, SingleSampleVarianceZero) {
  OnlineStats s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
}

TEST(OnlineStats, MergeMatchesSequential) {
  Rng rng(3);
  OnlineStats all, a, b;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.gaussian(1.0, 2.0);
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  OnlineStats b;
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Percentile, ExactOrderStatistics) {
  PercentileTracker t;
  for (int i = 1; i <= 100; ++i) t.add(i);
  EXPECT_DOUBLE_EQ(t.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(t.percentile(1.0), 100.0);
  EXPECT_NEAR(t.median(), 50.5, 1e-9);
  EXPECT_NEAR(t.percentile(0.99), 99.01, 1e-9);
}

TEST(Percentile, InterleavedAddAndQuery) {
  PercentileTracker t;
  t.add(5.0);
  EXPECT_DOUBLE_EQ(t.median(), 5.0);
  t.add(1.0);
  t.add(9.0);
  EXPECT_DOUBLE_EQ(t.median(), 5.0);
}

TEST(Percentile, EmptyThrows) {
  PercentileTracker t;
  EXPECT_THROW(t.median(), Error);
}

TEST(Percentile, BadQuantileThrows) {
  PercentileTracker t;
  t.add(1.0);
  EXPECT_THROW(t.percentile(-0.1), Error);
  EXPECT_THROW(t.percentile(1.1), Error);
}

TEST(Confusion, AccuracyAndCells) {
  ConfusionMatrix m(3);
  m.add(0, 0);
  m.add(0, 0);
  m.add(1, 1);
  m.add(2, 1);
  EXPECT_EQ(m.total(), 4u);
  EXPECT_DOUBLE_EQ(m.accuracy(), 0.75);
  EXPECT_EQ(m.count(2, 1), 1u);
  EXPECT_EQ(m.count(2, 2), 0u);
}

TEST(Confusion, PrecisionRecallF1) {
  ConfusionMatrix m(2);
  // class 1: tp=3, fp=1, fn=2.
  for (int i = 0; i < 3; ++i) m.add(1, 1);
  m.add(0, 1);
  for (int i = 0; i < 2; ++i) m.add(1, 0);
  m.add(0, 0);
  EXPECT_DOUBLE_EQ(m.precision(1), 0.75);
  EXPECT_DOUBLE_EQ(m.recall(1), 0.6);
  const double f1 = 2 * 0.75 * 0.6 / (0.75 + 0.6);
  EXPECT_NEAR(m.f1(1), f1, 1e-12);
}

TEST(Confusion, UndefinedClassesScoreZero) {
  ConfusionMatrix m(3);
  m.add(0, 0);
  EXPECT_DOUBLE_EQ(m.precision(2), 0.0);
  EXPECT_DOUBLE_EQ(m.recall(2), 0.0);
  EXPECT_DOUBLE_EQ(m.f1(2), 0.0);
}

TEST(Confusion, OutOfRangeThrows) {
  ConfusionMatrix m(2);
  EXPECT_THROW(m.add(2, 0), Error);
  EXPECT_THROW(m.count(0, 5), Error);
}

TEST(Table, MarkdownShape) {
  Table t("demo", {"a", "b"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  const std::string md = t.to_markdown();
  EXPECT_NE(md.find("### demo"), std::string::npos);
  EXPECT_NE(md.find("| 333"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, CsvOutput) {
  Table t("x", {"c1", "c2"});
  t.add_row({"v", "w"});
  EXPECT_EQ(t.to_csv(), "c1,c2\nv,w\n");
}

TEST(Table, JsonOutput) {
  Table t("x", {"c1", "c2"});
  t.add_row({"v", "w"});
  EXPECT_EQ(t.to_json(),
            R"({"title":"x","columns":["c1","c2"],"rows":[["v","w"]]})");
}

TEST(Table, JsonEscapesSpecials) {
  Table t("q\"uote", {"a\\b"});
  t.add_row({"line\nbreak"});
  EXPECT_EQ(
      t.to_json(),
      R"({"title":"q\"uote","columns":["a\\b"],"rows":[["line\nbreak"]]})");
}

TEST(Table, RowWidthMismatchThrows) {
  Table t("x", {"a"});
  EXPECT_THROW(t.add_row({"1", "2"}), Error);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(1.23456, 2), "1.23");
  EXPECT_EQ(Table::num(2.0, 0), "2");
}

TEST(TokenAccuracy, PerfectAndEmpty) {
  const std::vector<std::int32_t> a = {1, 2, 3};
  EXPECT_DOUBLE_EQ(token_accuracy(a, a), 1.0);
  const std::vector<std::int32_t> empty;
  EXPECT_DOUBLE_EQ(token_accuracy(empty, empty), 1.0);
}

TEST(TokenAccuracy, PartialAndLengthMismatch) {
  const std::vector<std::int32_t> ref = {1, 2, 3, 4};
  const std::vector<std::int32_t> hyp = {1, 9, 3};
  // 2 matches out of max(4,3)=4 positions.
  EXPECT_DOUBLE_EQ(token_accuracy(ref, hyp), 0.5);
}

TEST(Bleu, IdenticalIsOne) {
  const std::vector<std::int32_t> s = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(bleu(s, s), 1.0);
}

TEST(Bleu, DisjointIsZero) {
  const std::vector<std::int32_t> a = {1, 2, 3, 4};
  const std::vector<std::int32_t> b = {5, 6, 7, 8};
  EXPECT_DOUBLE_EQ(bleu(a, b), 0.0);
}

TEST(Bleu, BrevityPenaltyApplies) {
  const std::vector<std::int32_t> ref = {1, 2, 3, 4, 5, 6};
  const std::vector<std::int32_t> hyp = {1, 2, 3};
  const double full = bleu(ref, ref, 2);
  const double shortened = bleu(ref, hyp, 2);
  EXPECT_LT(shortened, full);
  EXPECT_GT(shortened, 0.0);
}

TEST(Bleu, OrderSensitivity) {
  const std::vector<std::int32_t> ref = {1, 2, 3, 4};
  const std::vector<std::int32_t> scrambled = {4, 3, 2, 1};
  // Unigram precision is 1 but higher-order n-grams break.
  EXPECT_DOUBLE_EQ(ngram_precision(ref, scrambled, 1), 1.0);
  EXPECT_LT(bleu(ref, scrambled, 2), 1.0);
}

TEST(NgramPrecision, ClippedCounts) {
  const std::vector<std::int32_t> ref = {1, 2};
  const std::vector<std::int32_t> hyp = {1, 1, 1};
  // "1" appears once in ref: clipped match = 1 of 3.
  EXPECT_NEAR(ngram_precision(ref, hyp, 1), 1.0 / 3.0, 1e-12);
}

}  // namespace
}  // namespace semcache::metrics
