// Cross-module integration scenarios — each one is a miniature of a paper
// claim, run end-to-end through the public API:
//   * specialized-vs-pooled codecs (II-A) through the channel stack,
//   * user adaptation over a long conversation (II-B + II-D),
//   * semantic payload vs traditional payload on the same channel (E1 core),
//   * open-loop event-driven workload through the simulator (E7 core).
#include <gtest/gtest.h>

#include "core/baselines.hpp"
#include "core/system.hpp"
#include "semantic/fidelity.hpp"
#include "semantic/quantizer.hpp"
#include "semantic/trainer.hpp"
#include "test_util.hpp"

namespace semcache {
namespace {

TEST(Integration, SpecializedBeatsPooledOnPolysemy) {
  Rng rng(91);
  text::WorldConfig wc;
  wc.num_domains = 2;
  wc.concepts_per_domain = 14;
  wc.num_polysemous = 10;       // heavy polysemy
  wc.polysemous_prob = 0.3;     // polysemous words appear often
  wc.sentence_length = 6;
  text::World world = text::World::generate(wc, rng);

  semantic::CodecConfig cc = test::codec_for_world(world);

  semantic::TrainConfig tc;
  tc.steps = 3000;

  // Specialized codec for domain 0 vs one pooled codec for both domains,
  // same capacity, same steps.
  Rng ri1(92), ri2(92);
  semantic::SemanticCodec specialized(cc, ri1);
  semantic::SemanticCodec pooled(cc, ri2);
  Rng rt1(93), rt2(93);
  semantic::CodecTrainer::pretrain_domain(specialized, world, 0, tc, rt1);
  semantic::CodecTrainer::pretrain_pooled(pooled, world, tc, rt2);

  Rng re1(94), re2(94);
  const auto spec = semantic::evaluate_codec(specialized, world, 0, 250, re1);
  const auto pool = semantic::evaluate_codec(pooled, world, 0, 250, re2);
  // The pooled model cannot disambiguate "bus"-style words without domain
  // context: specialized must win clearly.
  EXPECT_GT(spec.token_accuracy, pool.token_accuracy + 0.03);
}

TEST(Integration, UserAdaptationImprovesOverConversation) {
  core::SystemConfig config = test::tiny_system_config(95);
  config.world.concepts_per_domain = 14;
  config.pretrain.steps = 2500;
  config.buffer_trigger = 12;
  config.finetune_epochs = 8;
  config.oracle_selection = true;
  auto system = core::SemanticEdgeSystem::build(config);

  text::IdiolectConfig idio;
  idio.substitution_rate = 0.8;
  idio.slang_prob = 1.0;
  system->register_user("slangy", 0, &idio);
  system->register_user("peer", 1, nullptr);

  // First phase: general model struggles with the idiolect.
  metrics::OnlineStats early, late;
  for (int i = 0; i < 60; ++i) {
    text::Sentence msg = system->sample_message("slangy", 0);
    const auto r = system->transmit("slangy", "peer", msg);
    (i < 12 ? early : late).add(r.token_accuracy);
  }
  // After buffer-triggered updates the accuracy improves.
  EXPECT_GT(late.mean(), early.mean() + 0.05)
      << "early " << early.mean() << " late " << late.mean();
  // And the replicas are still bit-identical.
  EXPECT_TRUE(system->replicas_in_sync("slangy", 0, 0, 1));
}

TEST(Integration, SemanticPayloadSmallerThanTraditional) {
  core::SystemConfig config;
  config.seed = 96;
  config.world.num_domains = 2;
  config.world.concepts_per_domain = 16;
  config.world.sentence_length = 8;
  config.pretrain.steps = 2000;
  config.codec.feature_dim = 8;  // 1 dim per position
  config.feature_bits = 6;
  config.oracle_selection = true;
  auto system = core::SemanticEdgeSystem::build(config);
  system->register_user("a", 0, nullptr);
  system->register_user("b", 1, nullptr);

  Rng trng(97);
  core::TraditionalCodec traditional(system->world(), trng, 800);

  Rng srng(98);
  double semantic_bits = 0.0, traditional_bits = 0.0;
  const int n = 30;
  for (int i = 0; i < n; ++i) {
    const auto msg = system->sample_message("a", 0);
    semantic_bits += static_cast<double>(system->quantizer().total_bits());
    traditional_bits +=
        static_cast<double>(traditional.compressed_bits(msg));
  }
  EXPECT_LT(semantic_bits, traditional_bits)
      << "semantic " << semantic_bits / n << " vs traditional "
      << traditional_bits / n << " bits/msg";
}

TEST(Integration, OpenLoopWorkloadThroughSimulator) {
  core::SystemConfig config = test::tiny_system_config(99);
  config.world.concepts_per_domain = 12;
  config.pretrain.steps = 1200;
  config.oracle_selection = true;
  auto system = core::SemanticEdgeSystem::build(config);
  system->register_user("a", 0, nullptr);
  system->register_user("b", 1, nullptr);

  // Schedule 20 arrivals at 10 ms spacing, run once, collect reports.
  std::vector<core::TransmitReport> reports;
  auto& sim = system->simulator();
  for (int i = 0; i < 20; ++i) {
    sim.schedule_at(0.01 * i, [&, i] {
      text::Sentence msg = system->sample_message("a", i % 2);
      system->transmit_async("a", "b", std::move(msg),
                             [&](core::TransmitReport r) {
                               reports.push_back(std::move(r));
                             });
    });
  }
  sim.run();
  ASSERT_EQ(reports.size(), 20u);
  for (const auto& r : reports) {
    EXPECT_GT(r.latency_s, 0.0);
    EXPECT_LT(r.latency_s, 1.0);
  }
  EXPECT_EQ(system->stats().messages, 20u);
}

TEST(Integration, CongestionRaisesLatency) {
  // Same workload at 100x the arrival rate must see queueing delay.
  auto run_at_rate = [](double spacing_s) {
    core::SystemConfig config = test::tiny_system_config(100);
    config.world.num_domains = 1;
    config.world.num_polysemous = 0;
    config.world.concepts_per_domain = 10;
    config.pretrain.steps = 300;
    config.oracle_selection = true;
    // Slow access link so the uplink is the bottleneck.
    config.topology.access_bandwidth_bps = 1e5;
    auto system = core::SemanticEdgeSystem::build(config);
    system->register_user("a", 0, nullptr);
    system->register_user("b", 1, nullptr);
    metrics::OnlineStats latency;
    auto& sim = system->simulator();
    for (int i = 0; i < 40; ++i) {
      sim.schedule_at(spacing_s * i, [&] {
        system->transmit_async("a", "b", system->sample_message("a", 0),
                               [&](core::TransmitReport r) {
                                 latency.add(r.latency_s);
                               });
      });
    }
    sim.run();
    return latency.mean();
  };
  const double relaxed = run_at_rate(0.5);
  const double slammed = run_at_rate(0.0002);
  EXPECT_GT(slammed, relaxed * 1.5);
}

TEST(Integration, CacheEvictionForcesRefetch) {
  // Tiny cache: only one general model fits; alternating domains thrash.
  core::SystemConfig config = test::tiny_system_config(101);
  config.world.concepts_per_domain = 10;
  config.pretrain.steps = 300;
  config.oracle_selection = true;
  auto probe = core::SemanticEdgeSystem::build(config);
  const std::size_t model_bytes = probe->general_model(0).byte_size();

  config.cache_capacity_bytes = model_bytes + model_bytes / 2;  // fits 1
  auto system = core::SemanticEdgeSystem::build(config);
  system->register_user("a", 0, nullptr);
  system->register_user("b", 1, nullptr);
  for (int i = 0; i < 8; ++i) {
    system->transmit("a", "b", system->sample_message("a", i % 2));
  }
  const auto& stats = system->edge_state(0).general_cache().stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_GT(stats.misses, 0u);
}

}  // namespace
}  // namespace semcache
