// Integration tests for semcache::core — the full Fig. 1 workflow. Builds
// one small trained system per fixture (shared across tests) and verifies:
// end-to-end delivery, user-model establishment, buffered updates, replica
// byte-identity after gradient sync, the decoder-copy ablation, cache
// touch behaviour, and the traditional baseline.
#include <gtest/gtest.h>

#include "core/baselines.hpp"
#include "core/system.hpp"
#include "test_util.hpp"

namespace semcache::core {
namespace {

SystemConfig small_system_config() {
  SystemConfig config = test::tiny_system_config(71);
  config.world.concepts_per_domain = 16;
  config.world.num_polysemous = 6;
  config.pretrain.steps = 3000;
  config.feature_bits = 6;
  config.buffer_trigger = 8;
  config.finetune_epochs = 4;
  config.num_edges = 2;
  // The shared SystemTest fixture registers up to 7 users on edge 0 over
  // its lifetime (alice, carol, erin, gina, ivy, kim, lee); each needs a
  // free device slot.
  config.devices_per_edge = 8;
  return config;
}

class SystemTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    system_ = SemanticEdgeSystem::build(small_system_config()).release();
    system_->register_user("alice", 0, nullptr);
    system_->register_user("bob", 1, nullptr);
  }
  static void TearDownTestSuite() {
    delete system_;
    system_ = nullptr;
  }
  static SemanticEdgeSystem* system_;
};

SemanticEdgeSystem* SystemTest::system_ = nullptr;

TEST_F(SystemTest, BuildFilledCodecDims) {
  const auto& cfg = system_->config();
  EXPECT_EQ(cfg.codec.surface_vocab, system_->world().surface_count());
  EXPECT_EQ(cfg.codec.meaning_vocab, system_->world().meaning_count());
  EXPECT_GT(cfg.pretrain.feature_noise, 0.0);  // QAT auto-enabled
}

TEST_F(SystemTest, GeneralModelsAccurateOnOwnDomain) {
  for (std::size_t d = 0; d < system_->world().num_domains(); ++d) {
    Rng rng(100 + d);
    const auto report = semantic::evaluate_codec(
        system_->general_model(d), system_->world(), d, 100, rng);
    EXPECT_GT(report.token_accuracy, 0.9) << "domain " << d;
  }
}

TEST_F(SystemTest, TransmitDeliversMeanings) {
  const auto msg = system_->sample_message("alice", 0);
  const TransmitReport r = system_->transmit("alice", "bob", msg);
  EXPECT_EQ(r.decoded_meanings.size(), msg.meanings.size());
  EXPECT_GT(r.token_accuracy, 0.5);
  EXPECT_GT(r.latency_s, 0.0);
  EXPECT_GT(r.payload_bytes, 0u);
  EXPECT_GT(r.airtime_bits, 0u);  // cross-edge message rides the channel
}

TEST_F(SystemTest, FirstContactEstablishesUserModelOnBothEdges) {
  system_->register_user("carol", 0, nullptr);
  system_->register_user("dave", 1, nullptr);
  const auto msg = system_->sample_message("carol", 1);
  const TransmitReport r = system_->transmit("carol", "dave", msg);
  EXPECT_TRUE(r.established_user_model);
  EXPECT_NE(system_->edge_state(0).find_slot("carol", r.domain_selected),
            nullptr);
  EXPECT_NE(system_->edge_state(1).find_slot("carol", r.domain_selected),
            nullptr);
  // Second message: slot reused.
  const TransmitReport r2 = system_->transmit(
      "carol", "dave", system_->sample_message("carol", 1));
  if (r2.domain_selected == r.domain_selected) {
    EXPECT_FALSE(r2.established_user_model);
  }
}

TEST_F(SystemTest, FreshUserSlotsAreGeneralModelClones) {
  system_->register_user("erin", 0, nullptr);
  system_->register_user("frank", 1, nullptr);
  SystemConfig oracle_cfg = small_system_config();
  const auto msg = system_->sample_message("erin", 0);
  const TransmitReport r = system_->transmit("erin", "frank", msg);
  const std::size_t m = r.domain_selected;
  UserModelSlot* slot = system_->edge_state(0).find_slot("erin", m);
  ASSERT_NE(slot, nullptr);
  if (!r.triggered_update) {
    EXPECT_TRUE(slot->model->parameters().values_equal(
        system_->general_model(m).parameters()));
  }
}

TEST_F(SystemTest, BufferTripsAndSyncKeepsReplicasBitIdentical) {
  system_->register_user("gina", 0, nullptr);
  system_->register_user("hank", 1, nullptr);
  const std::size_t trigger = system_->config().buffer_trigger;
  std::size_t updates = 0;
  for (std::size_t i = 0; i < trigger + 2; ++i) {
    text::Sentence msg = system_->sample_message("gina", 0);
    msg.domain = 0;
    // Oracle-pin the domain so every message lands in the same buffer.
    const TransmitReport r = system_->transmit("gina", "hank", msg);
    if (r.triggered_update) {
      ++updates;
      EXPECT_GT(r.sync_bytes, 0u);
    }
  }
  // Selector noise can scatter a few messages to the other domain, but with
  // trigger+2 sends at least one update must have fired when selection was
  // consistent; tolerate zero only if the slot never accumulated enough.
  UserModelSlot* slot = system_->edge_state(0).find_slot("gina", 0);
  if (slot != nullptr && slot->send_version > 0) {
    EXPECT_TRUE(system_->replicas_in_sync("gina", 0, 0, 1));
    UserModelSlot* rslot = system_->edge_state(1).find_slot("gina", 0);
    ASSERT_NE(rslot, nullptr);
    EXPECT_EQ(rslot->recv_version.current(), slot->send_version);
    EXPECT_GE(updates, 1u);
  }
}

TEST_F(SystemTest, UpdateLeavesGeneralModelsUntouched) {
  // "the general models remain the same during all time" (§II-D).
  const auto before = system_->general_model(0).parameters().flatten_values();
  system_->register_user("ivy", 0, nullptr);
  system_->register_user("jack", 1, nullptr);
  for (std::size_t i = 0; i < system_->config().buffer_trigger + 1; ++i) {
    text::Sentence msg = system_->sample_message("ivy", 0);
    system_->transmit("ivy", "jack", msg);
  }
  const auto after = system_->general_model(0).parameters().flatten_values();
  EXPECT_EQ(before, after);
}

TEST_F(SystemTest, StatsAccumulate) {
  const SystemStats before = system_->stats();
  system_->transmit("alice", "bob", system_->sample_message("alice", 0));
  const SystemStats& after = system_->stats();
  EXPECT_EQ(after.messages, before.messages + 1);
  EXPECT_GT(after.feature_bytes, before.feature_bytes);
  EXPECT_GT(after.uplink_bytes, before.uplink_bytes);
  EXPECT_GT(after.downlink_bytes, before.downlink_bytes);
}

TEST_F(SystemTest, UnknownUserThrows) {
  const auto msg = system_->sample_message("alice", 0);
  EXPECT_THROW(system_->transmit("alice", "nobody", msg), Error);
  EXPECT_THROW(system_->user("nobody"), Error);
}

TEST_F(SystemTest, RegisterUserValidation) {
  EXPECT_THROW(system_->register_user("alice", 0, nullptr), Error);  // dup
  EXPECT_THROW(system_->register_user("zoe", 9, nullptr), Error);  // bad edge
}

TEST_F(SystemTest, WrongLengthMessageRejected) {
  text::Sentence bad;
  bad.domain = 0;
  bad.surface = {1, 2, 3};
  bad.meanings = {1, 2, 3};
  EXPECT_THROW(system_->transmit("alice", "bob", bad), Error);
}

TEST_F(SystemTest, SameEdgeTransmitSkipsBackbone) {
  system_->register_user("kim", 0, nullptr);
  system_->register_user("lee", 0, nullptr);  // same edge as kim
  const auto msg = system_->sample_message("kim", 0);
  const TransmitReport r = system_->transmit("kim", "lee", msg);
  EXPECT_EQ(r.airtime_bits, 0u);  // no cross-edge channel
  EXPECT_GT(r.token_accuracy, 0.5);
}

TEST_F(SystemTest, GeneralCacheStartsWarm) {
  const auto& stats = system_->edge_state(0).general_cache().stats();
  EXPECT_GE(stats.insertions, system_->world().num_domains());
}

// Fresh-system tests (need their own configuration).

TEST(SystemAblation, DecoderCopyDisabledChargesOutputReturn) {
  SystemConfig config = small_system_config();
  config.decoder_copy_enabled = false;
  config.oracle_selection = true;
  config.pretrain.steps = 1500;
  auto system = SemanticEdgeSystem::build(config);
  system->register_user("a", 0, nullptr);
  system->register_user("b", 1, nullptr);
  const auto msg = system->sample_message("a", 0);
  const TransmitReport r = system->transmit("a", "b", msg);
  EXPECT_GT(r.output_return_bytes, 0u);
  EXPECT_GT(system->stats().output_return_bytes, 0u);
}

TEST(SystemAblation, DecoderCopyEnabledCostsNothingExtra) {
  SystemConfig config = small_system_config();
  config.oracle_selection = true;
  config.pretrain.steps = 1500;
  auto system = SemanticEdgeSystem::build(config);
  system->register_user("a", 0, nullptr);
  system->register_user("b", 1, nullptr);
  const TransmitReport r =
      system->transmit("a", "b", system->sample_message("a", 0));
  EXPECT_EQ(r.output_return_bytes, 0u);
  EXPECT_GT(r.mismatch, 0.0);  // mismatch still computed — locally
}

TEST(SystemOracle, OracleSelectionAlwaysCorrect) {
  SystemConfig config = small_system_config();
  config.oracle_selection = true;
  config.pretrain.steps = 1500;
  auto system = SemanticEdgeSystem::build(config);
  system->register_user("a", 0, nullptr);
  system->register_user("b", 1, nullptr);
  for (int i = 0; i < 5; ++i) {
    const auto msg = system->sample_message("a", i % 2);
    const TransmitReport r = system->transmit("a", "b", msg);
    EXPECT_TRUE(r.selection_correct);
    EXPECT_EQ(r.domain_selected, msg.domain);
  }
  EXPECT_EQ(system->stats().selection_errors, 0u);
}

TEST(SystemDeterminism, SameSeedSameOutcome) {
  auto run = [] {
    SystemConfig config = small_system_config();
    config.pretrain.steps = 800;
    auto system = SemanticEdgeSystem::build(config);
    system->register_user("a", 0, nullptr);
    system->register_user("b", 1, nullptr);
    std::vector<double> accs;
    for (int i = 0; i < 4; ++i) {
      const auto msg = system->sample_message("a", 0);
      accs.push_back(system->transmit("a", "b", msg).token_accuracy);
    }
    return accs;
  };
  EXPECT_EQ(run(), run());
}

TEST(Baseline, TraditionalCleanChannelPerfect) {
  Rng rng(81);
  text::WorldConfig wc;
  wc.num_domains = 2;
  wc.concepts_per_domain = 12;
  wc.sentence_length = 6;
  text::World world = text::World::generate(wc, rng);
  Rng trng(82);
  TraditionalCodec codec(world, trng, 500);
  auto pipe = channel::make_bsc_pipeline(
      std::make_unique<channel::IdentityCode>(), 0.0);
  Rng crng(83);
  for (int i = 0; i < 10; ++i) {
    const auto msg = world.sample_sentence(i % 2, crng);
    const auto result = codec.transmit(msg, *pipe, crng);
    EXPECT_DOUBLE_EQ(result.surface_accuracy, 1.0);
    EXPECT_DOUBLE_EQ(result.meaning_accuracy, 1.0);  // oracle disambiguation
    EXPECT_GT(result.payload_bits, 0u);
  }
}

TEST(Baseline, TraditionalCompressesBelowRawBits) {
  Rng rng(84);
  text::WorldConfig wc;
  wc.num_domains = 2;
  wc.concepts_per_domain = 12;
  wc.sentence_length = 8;
  text::World world = text::World::generate(wc, rng);
  Rng trng(85);
  TraditionalCodec codec(world, trng, 1000);
  Rng srng(86);
  double total_bits = 0.0;
  const int n = 50;
  for (int i = 0; i < n; ++i) {
    total_bits += static_cast<double>(
        codec.compressed_bits(world.sample_sentence(0, srng)));
  }
  // Raw encoding is 16 bits/token.
  EXPECT_LT(total_bits / n, 8.0 * 16.0);
}

TEST(Baseline, TraditionalDegradesOnNoisyChannel) {
  Rng rng(87);
  text::WorldConfig wc;
  wc.num_domains = 2;
  wc.concepts_per_domain = 12;
  wc.sentence_length = 6;
  text::World world = text::World::generate(wc, rng);
  Rng trng(88);
  TraditionalCodec codec(world, trng, 500);
  auto noisy = channel::make_bsc_pipeline(
      std::make_unique<channel::IdentityCode>(), 0.05);
  Rng crng(89);
  metrics::OnlineStats acc;
  for (int i = 0; i < 40; ++i) {
    const auto msg = world.sample_sentence(0, crng);
    acc.add(codec.transmit(msg, *noisy, crng).surface_accuracy);
  }
  EXPECT_LT(acc.mean(), 0.95);
  EXPECT_GT(acc.mean(), 0.1);
}

}  // namespace
}  // namespace semcache::core
