// Kernel-equivalence suite for the blocked/register-tiled matmul family.
//
// The fast kernels in tensor/ops.cpp promise two things the rest of the
// system leans on:
//  1. bit-exactness against the retained naive reference (same per-element
//     summation order), across arbitrary — including adversarial — shapes;
//  2. allocation discipline: the `_into`/`_acc` variants never reallocate a
//     warmed-up output tensor, and Workspace slots are pointer-stable.
// A silent break in either shows up here long before it corrupts a trained
// system, so this suite rides tier-1.
#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <type_traits>
#include <vector>

#include "common/thread_pool.hpp"
#include "nn/gru.hpp"
#include "nn/layers.hpp"
#include "semantic/codec.hpp"
#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"
#include "tensor/workspace.hpp"
#include "test_util.hpp"

namespace semcache::tensor {
namespace {

struct Shape {
  std::size_t m, k, n;
};

// Degenerate, prime-sized, tile-remainder, and codec-realistic shapes. The
// register tile is 4 rows, so shapes straddling multiples of 4 catch
// remainder-loop bugs; primes catch stride confusion.
const std::vector<Shape>& shapes() {
  static const std::vector<Shape> s = {
      {1, 1, 1},   {1, 5, 3},   {2, 2, 2},   {3, 1, 7},  {4, 4, 4},
      {5, 1, 1},   {5, 7, 3},   {7, 13, 11}, {8, 3, 5},  {9, 4, 6},
      {13, 17, 1}, {8, 48, 200}, {16, 16, 16}, {31, 2, 29},
  };
  return s;
}

Tensor random_tensor(std::size_t rows, std::size_t cols, Rng& rng) {
  return Tensor::uniform({rows, cols}, 1.0f, rng);
}

TEST(KernelEquivalence, MatmulBitExactAcrossShapes) {
  for (const Shape& sh : shapes()) {
    Rng rng(100 + sh.m * 1000 + sh.k * 100 + sh.n);
    const Tensor a = random_tensor(sh.m, sh.k, rng);
    const Tensor b = random_tensor(sh.k, sh.n, rng);
    const Tensor expected = matmul_reference(a, b);
    EXPECT_TRUE(test::AllNear(matmul(a, b), expected, 0.0))
        << sh.m << "x" << sh.k << "x" << sh.n;
    Tensor c;
    matmul_into(c, a, b);
    EXPECT_TRUE(test::AllNear(c, expected, 0.0))
        << "into " << sh.m << "x" << sh.k << "x" << sh.n;
  }
}

TEST(KernelEquivalence, PooledKernelsBitExactAcrossWorkerCounts) {
  // The pooled row-partitioned entry points must match the sequential
  // kernels bit-for-bit on every partition: shapes large enough to fan
  // out (above the internal grain), prime/remainder row counts that land
  // partition cuts off the 4-row tile, and small shapes that stay inline.
  const std::vector<Shape> pooled_shapes = {
      {256, 48, 200},  // serving decoder affine at batch 32 — fans out
      {261, 40, 64},   // prime-ish rows: last block is a remainder
      {64, 48, 200},   // smallest serving-ish shape above the grain
      {8, 48, 200},    // below the grain: must stay inline
      {3, 5, 7},       // tiny: must stay inline
  };
  for (const std::size_t workers : {1u, 2u, 3u, 4u}) {
    common::ThreadPool pool(workers);
    for (const Shape& sh : pooled_shapes) {
      Rng rng(300 + sh.m);
      const Tensor a = random_tensor(sh.m, sh.k, rng);
      const Tensor b = random_tensor(sh.k, sh.n, rng);
      const Tensor bias = Tensor::uniform({sh.n}, 1.0f, rng);
      const std::string label = std::to_string(workers) + " workers " +
                                std::to_string(sh.m) + "x" +
                                std::to_string(sh.k) + "x" +
                                std::to_string(sh.n);
      Tensor seq, pooled;
      matmul_into(seq, a, b);
      matmul_into(pooled, a, b, &pool);
      EXPECT_TRUE(test::AllNear(pooled, seq, 0.0)) << "matmul " << label;
      affine_into(seq, a, b, bias);
      affine_into(pooled, a, b, bias, &pool);
      EXPECT_TRUE(test::AllNear(pooled, seq, 0.0)) << "affine " << label;
      EXPECT_EQ(row_argmax(seq, &pool), row_argmax(seq)) << "argmax " << label;
    }
  }
}

TEST(KernelEquivalence, MatmulZeroAndTinyInputs) {
  Rng rng(7);
  const Tensor z = Tensor::zeros({5, 9});
  const Tensor b = random_tensor(9, 6, rng);
  EXPECT_TRUE(test::AllNear(matmul(z, b), matmul_reference(z, b), 0.0));
  // Denormal-scale values must flow through identically too.
  Tensor tiny = random_tensor(6, 9, rng);
  for (std::size_t i = 0; i < tiny.size(); ++i) tiny.at(i) *= 1e-38f;
  EXPECT_TRUE(
      test::AllNear(matmul(tiny, b), matmul_reference(tiny, b), 0.0));
}

TEST(KernelEquivalence, NonFiniteInputsAgreeBitwise) {
  // No path in the matmul family may skip zero A elements: 0 * Inf must
  // produce the same NaNs in the tiled rows, the remainder rows, and the
  // reference. Bitwise comparison, since NaN != NaN.
  Rng rng(8);
  Tensor a = random_tensor(6, 5, rng);  // 6 rows: one 4-row tile + remainder
  a.at(0, 2) = 0.0f;
  a.at(5, 2) = 0.0f;
  Tensor b = random_tensor(5, 7, rng);
  b.at(2, 3) = std::numeric_limits<float>::infinity();
  b.at(2, 4) = std::numeric_limits<float>::quiet_NaN();
  const Tensor fast = matmul(a, b);
  const Tensor ref = matmul_reference(a, b);
  ASSERT_TRUE(fast.same_shape(ref));
  EXPECT_EQ(std::memcmp(fast.data(), ref.data(),
                        fast.size() * sizeof(float)),
            0);
}

TEST(KernelEquivalence, AffineMatchesMatmulPlusBias) {
  for (const Shape& sh : shapes()) {
    Rng rng(200 + sh.m * 1000 + sh.k * 100 + sh.n);
    const Tensor x = random_tensor(sh.m, sh.k, rng);
    const Tensor w = random_tensor(sh.k, sh.n, rng);
    const Tensor bias = Tensor::uniform({sh.n}, 1.0f, rng);
    Tensor expected = matmul_reference(x, w);
    for (std::size_t i = 0; i < sh.m; ++i) {
      for (std::size_t j = 0; j < sh.n; ++j) expected.at(i, j) += bias.at(j);
    }
    EXPECT_TRUE(test::AllNear(affine(x, w, bias), expected, 0.0))
        << sh.m << "x" << sh.k << "x" << sh.n;
  }
}

TEST(KernelEquivalence, TransposedVariantsMatchReference) {
  for (const Shape& sh : shapes()) {
    Rng rng(300 + sh.m * 1000 + sh.k * 100 + sh.n);
    // tn: a is (k x m) and used as aᵀ.
    const Tensor at = random_tensor(sh.k, sh.m, rng);
    const Tensor b = random_tensor(sh.k, sh.n, rng);
    Tensor c;
    matmul_tn_into(c, at, b);
    EXPECT_TRUE(test::AllNear(c, matmul_reference(transpose(at), b), 0.0))
        << "tn " << sh.m << "x" << sh.k << "x" << sh.n;
    // nt: b is (n x k) and used as bᵀ.
    const Tensor a = random_tensor(sh.m, sh.k, rng);
    const Tensor bt = random_tensor(sh.n, sh.k, rng);
    matmul_nt_into(c, a, bt);
    EXPECT_TRUE(test::AllNear(c, matmul_reference(a, transpose(bt)), 0.0))
        << "nt " << sh.m << "x" << sh.k << "x" << sh.n;
  }
}

TEST(KernelEquivalence, AccumulateVariants) {
  Rng rng(41);
  const Tensor a = random_tensor(6, 10, rng);
  const Tensor b = random_tensor(10, 9, rng);
  // Zero-initialized accumulators match the overwrite variants bit-exactly.
  Tensor acc = Tensor::zeros({6, 9});
  matmul_acc(acc, a, b);
  EXPECT_TRUE(test::AllNear(acc, matmul(a, b), 0.0));
  // Warm accumulators: matches start + product to float tolerance (the
  // accumulation interleaves with the existing contents).
  Tensor warm = random_tensor(6, 9, rng);
  Tensor expected = tensor::add(warm, matmul_reference(a, b));
  matmul_acc(warm, a, b);
  EXPECT_TRUE(test::AllNear(warm, expected, 1e-4));

  const Tensor at = random_tensor(10, 6, rng);
  Tensor acc_tn = Tensor::zeros({6, 9});
  matmul_tn_acc(acc_tn, at, b);
  Tensor tn;
  matmul_tn_into(tn, at, b);
  EXPECT_TRUE(test::AllNear(acc_tn, tn, 0.0));

  const Tensor bt = random_tensor(9, 10, rng);
  Tensor acc_nt = Tensor::zeros({6, 9});
  matmul_nt_acc(acc_nt, a, bt);
  Tensor nt;
  matmul_nt_into(nt, a, bt);
  EXPECT_TRUE(test::AllNear(acc_nt, nt, 0.0));
}

TEST(KernelEquivalence, RandomizedShapeSweep) {
  Rng shape_rng(90210);
  for (int round = 0; round < 60; ++round) {
    const auto m = static_cast<std::size_t>(shape_rng.uniform_int(1, 12));
    const auto k = static_cast<std::size_t>(shape_rng.uniform_int(1, 12));
    const auto n = static_cast<std::size_t>(shape_rng.uniform_int(1, 12));
    Rng rng(1000 + static_cast<std::uint64_t>(round));
    const Tensor a = random_tensor(m, k, rng);
    const Tensor b = random_tensor(k, n, rng);
    EXPECT_TRUE(test::AllNear(matmul(a, b), matmul_reference(a, b), 0.0))
        << m << "x" << k << "x" << n;
  }
}

TEST(KernelAllocation, IntoVariantsNeverReallocateWarmOutputs) {
  Rng rng(5150);
  Tensor c;
  // Warm up at the largest shape in the sweep.
  matmul_into(c, random_tensor(12, 8, rng), random_tensor(8, 16, rng));
  const float* warm_ptr = c.data();
  const std::size_t warm_capacity = c.capacity();
  for (std::size_t m = 1; m <= 12; ++m) {
    const Tensor a = random_tensor(m, 8, rng);
    const Tensor b = random_tensor(8, m, rng);
    matmul_into(c, a, b);
    EXPECT_EQ(c.data(), warm_ptr) << "matmul_into reallocated at m=" << m;
    const Tensor bias = Tensor::uniform({m}, 1.0f, rng);
    affine_into(c, a, b, bias);
    EXPECT_EQ(c.data(), warm_ptr) << "affine_into reallocated at m=" << m;
  }
  EXPECT_EQ(c.capacity(), warm_capacity);
}

TEST(KernelAllocation, WorkspaceSlotsArePointerStable) {
  Workspace ws;
  Tensor& first = ws.acquire(0, {4, 4});
  const float* p0 = first.data();
  // Acquiring later slots grows the table but must not move slot 0.
  for (std::size_t slot = 1; slot < 20; ++slot) ws.acquire(slot, {2, 2});
  EXPECT_EQ(first.data(), p0);
  EXPECT_EQ(&ws.acquire(0, {2, 8}), &first);  // same slot object
  EXPECT_EQ(first.data(), p0);                // same storage after reshape
  const std::size_t reserved = ws.floats_reserved();
  for (int i = 0; i < 10; ++i) ws.acquire(3, {1, 2});
  EXPECT_EQ(ws.floats_reserved(), reserved);  // steady state: no growth
}

TEST(KernelAllocation, WorkspaceIsCloneOnlyNeverCopied) {
  // Per-worker arenas on parallel sections must come from clone():
  // copying is deleted so two owners can never silently alias one arena,
  // and a clone reproduces the slot table and reserved capacities with
  // fully independent storage.
  static_assert(!std::is_copy_constructible_v<Workspace>);
  static_assert(!std::is_copy_assignable_v<Workspace>);
  static_assert(std::is_move_constructible_v<Workspace>);

  Workspace ws;
  Tensor& a = ws.acquire(0, {8, 8});
  a.fill(1.0f);
  ws.acquire(2, {6, 6});       // slot 1 stays empty; slot 2 high-water 36
  ws.acquire(2, {2, 2});       // shrink: capacity keeps the high-water mark
  const std::size_t reserved = ws.floats_reserved();

  Workspace clone = ws.clone();
  EXPECT_EQ(clone.slot_count(), ws.slot_count());
  EXPECT_EQ(clone.floats_reserved(), reserved);
  Tensor& ca = clone.acquire(0, {8, 8});
  EXPECT_NE(ca.data(), a.data());  // distinct storage
  ca.fill(2.0f);
  EXPECT_EQ(a.at(0, 0), 1.0f);     // writes through the clone never alias
  // A warmed clone is already at steady state: reusing its slots at or
  // under the inherited capacities allocates nothing.
  clone.acquire(2, {6, 6});
  clone.acquire(2, {3, 3});
  EXPECT_EQ(clone.floats_reserved(), reserved);

  // Moves hand over the heap-anchored slots: references and storage
  // handed out before the move stay valid and pointer-stable.
  const float* pa = a.data();
  Workspace moved = std::move(ws);
  EXPECT_EQ(moved.acquire(0, {8, 8}).data(), pa);
}

TEST(KernelAllocation, LayerForwardBuffersAreStable) {
  Rng rng(99);
  nn::Linear lin(6, 5, rng);
  const Tensor x = Tensor::uniform({4, 6}, 1.0f, rng);
  const Tensor& y = lin.forward(x);
  const float* py = y.data();
  for (int i = 0; i < 5; ++i) lin.forward(x);
  EXPECT_EQ(y.data(), py);

  nn::Gru gru(3, 4, rng);
  const Tensor xs = Tensor::uniform({6, 3}, 1.0f, rng);
  const Tensor& hs = gru.forward(xs);
  const float* ph = hs.data();
  gru.forward(xs);
  // Shorter sequences reuse the same (high-water-mark) storage.
  const Tensor xs_short = Tensor::uniform({2, 3}, 1.0f, rng);
  gru.forward(xs_short);
  EXPECT_EQ(hs.data(), ph);
}

}  // namespace
}  // namespace semcache::tensor

namespace semcache::semantic {
namespace {

CodecConfig small_config() {
  CodecConfig cc;
  cc.surface_vocab = 40;
  cc.meaning_vocab = 30;
  cc.sentence_length = 4;
  cc.embed_dim = 6;
  cc.feature_dim = 8;
  cc.hidden_dim = 10;
  return cc;
}

TEST(CodecBatching, EncodeBatchMatchesStackedSingles) {
  Rng rng(2024);
  SemanticCodec codec(small_config(), rng);
  const std::vector<std::int32_t> sentences = {1, 2, 3, 4,  5, 6,  7, 8,
                                               9, 10, 11, 12};
  const Tensor batch = codec.encoder().encode_batch(sentences, 3);
  ASSERT_EQ(batch.dim(0), 3u);
  for (std::size_t s = 0; s < 3; ++s) {
    const Tensor single = codec.encoder().encode(
        std::span<const std::int32_t>(sentences).subspan(s * 4, 4));
    for (std::size_t j = 0; j < batch.dim(1); ++j) {
      EXPECT_EQ(single.at(0, j), batch.at(s, j)) << "sentence " << s;
    }
  }
}

TEST(CodecBatching, DecodeBatchMatchesStackedSingles) {
  Rng rng(2025);
  SemanticCodec codec(small_config(), rng);
  const std::vector<std::int32_t> sentences = {1, 2, 3, 4, 5, 6, 7, 8};
  const Tensor features = codec.encoder().encode_batch(sentences, 2);
  const Tensor batch_logits = codec.decoder().decode_logits_batch(features);
  ASSERT_EQ(batch_logits.dim(0), 2u * 4u);
  for (std::size_t s = 0; s < 2; ++s) {
    Tensor f({1, features.dim(1)});
    for (std::size_t j = 0; j < features.dim(1); ++j) {
      f.at(0, j) = features.at(s, j);
    }
    const Tensor single = codec.decoder().decode_logits(f);
    for (std::size_t r = 0; r < 4; ++r) {
      for (std::size_t v = 0; v < single.dim(1); ++v) {
        EXPECT_EQ(single.at(r, v), batch_logits.at(s * 4 + r, v))
            << "sentence " << s;
      }
    }
  }
}

TEST(CodecBatching, ForwardLossBatchOfOneMatchesSingle) {
  Rng rng(2026);
  SemanticCodec codec(small_config(), rng);
  const std::vector<std::int32_t> surface = {1, 2, 3, 4};
  const std::vector<std::int32_t> meanings = {5, 6, 7, 8};
  const double single = codec.forward_loss(surface, meanings);
  const double batch = codec.forward_loss_batch(surface, meanings, 1);
  EXPECT_DOUBLE_EQ(single, batch);
}

}  // namespace
}  // namespace semcache::semantic
