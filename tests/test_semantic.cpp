// Unit tests for semcache::semantic — codec shapes and gradients, clone
// byte-identity, quantizer round-trips, training convergence, fidelity.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "metrics/ngram.hpp"
#include "nn/optimizer.hpp"
#include "semantic/codec.hpp"
#include "semantic/fidelity.hpp"
#include "semantic/quantizer.hpp"
#include "semantic/trainer.hpp"
#include "tensor/ops.hpp"
#include "test_util.hpp"

namespace semcache::semantic {
namespace {

CodecConfig small_config() {
  CodecConfig c;
  c.surface_vocab = 40;
  c.meaning_vocab = 30;
  c.sentence_length = 4;
  c.embed_dim = 8;
  c.feature_dim = 8;  // 2 dims per position
  c.hidden_dim = 16;
  return c;
}

std::vector<std::int32_t> ids(std::initializer_list<std::int32_t> v) {
  return {v};
}

TEST(Codec, ConfigValidation) {
  Rng rng(1);
  CodecConfig bad = small_config();
  bad.feature_dim = 7;  // not a multiple of sentence_length
  EXPECT_THROW(SemanticCodec(bad, rng), Error);
  bad = small_config();
  bad.surface_vocab = 1;
  EXPECT_THROW(SemanticCodec(bad, rng), Error);
}

TEST(Codec, EncodeShapeAndRange) {
  Rng rng(2);
  KbEncoder enc(small_config(), rng);
  const auto f = enc.encode(ids({1, 2, 3, 4}));
  EXPECT_EQ(f.dim(0), 1u);
  EXPECT_EQ(f.dim(1), 8u);
  for (std::size_t i = 0; i < f.size(); ++i) {
    EXPECT_GT(f.at(i), -1.0f);
    EXPECT_LT(f.at(i), 1.0f);  // tanh-bounded
  }
}

TEST(Codec, EncodeRejectsWrongLength) {
  Rng rng(3);
  KbEncoder enc(small_config(), rng);
  EXPECT_THROW(enc.encode(ids({1, 2, 3})), Error);
}

TEST(Codec, DecodeShapes) {
  Rng rng(4);
  KbDecoder dec(small_config(), rng);
  tensor::Tensor f({1, 8});
  const auto logits = dec.decode_logits(f);
  EXPECT_EQ(logits.dim(0), 4u);
  EXPECT_EQ(logits.dim(1), 30u);
  const auto decoded = dec.decode(f);
  EXPECT_EQ(decoded.size(), 4u);
}

TEST(Codec, DecodeRejectsBadFeature) {
  Rng rng(5);
  KbDecoder dec(small_config(), rng);
  tensor::Tensor wrong({1, 4});
  EXPECT_THROW(dec.decode_logits(wrong), Error);
}

TEST(Codec, JointLossFiniteAndBackwardRuns) {
  Rng rng(6);
  SemanticCodec codec(small_config(), rng);
  const auto surface = ids({5, 6, 7, 8});
  const auto meanings = ids({1, 2, 3, 4});
  const double loss = codec.forward_loss(surface, meanings);
  EXPECT_GT(loss, 0.0);
  EXPECT_LT(loss, 10.0);
  EXPECT_NO_THROW(codec.backward());
  // Gradients should be non-zero somewhere. (Bind the ParameterSet: its
  // params() span must not outlive it.)
  const nn::ParameterSet params = codec.parameters();
  float grad_norm = 0.0f;
  for (const auto* p : params.params()) {
    grad_norm += tensor::l2_norm(p->grad);
  }
  EXPECT_GT(grad_norm, 0.0f);
}

TEST(Codec, FeatureNoiseRequiresRng) {
  Rng rng(7);
  SemanticCodec codec(small_config(), rng);
  EXPECT_THROW(
      codec.forward_loss(ids({1, 2, 3, 4}), ids({1, 2, 3, 4}), 0.1f, nullptr),
      Error);
}

TEST(Codec, CloneIsByteIdenticalAndIndependent) {
  Rng rng(8);
  SemanticCodec codec(small_config(), rng);
  auto copy = codec.clone();
  EXPECT_TRUE(codec.parameters().values_equal(copy->parameters()));
  // Same outputs.
  const auto surface = ids({3, 1, 4, 1});
  EXPECT_EQ(codec.reconstruct(surface), copy->reconstruct(surface));
  // Mutating the copy leaves the original untouched.
  copy->parameters().params()[0]->value.at(0) += 1.0f;
  EXPECT_FALSE(codec.parameters().values_equal(copy->parameters()));
}

TEST(Codec, ByteSizeMatchesSerialization) {
  Rng rng(9);
  SemanticCodec codec(small_config(), rng);
  ByteWriter w;
  codec.parameters().serialize(w);
  EXPECT_EQ(codec.byte_size(), w.size());
}

TEST(Codec, GradCheckThroughFullCodec) {
  Rng rng(10);
  SemanticCodec codec(small_config(), rng);
  const auto surface = ids({2, 9, 17, 33});
  const auto meanings = ids({0, 5, 11, 29});
  auto params = codec.parameters();
  auto loss_fn = [&]() -> double {
    return codec.forward_loss(surface, meanings);
  };
  nn::Optimizer::zero_grad(params.params());
  loss_fn();
  codec.backward();
  const auto result = nn::gradcheck(loss_fn, params.params(), 1e-3, 30);
  EXPECT_TRUE(result.ok(2e-2)) << "rel err " << result.max_rel_error;
}

TEST(Quantizer, RoundTripWithinMaxError) {
  FeatureQuantizer q(8, 6);
  Rng rng(11);
  tensor::Tensor f({1, 8});
  for (std::size_t i = 0; i < 8; ++i) {
    f.at(0, i) = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  const auto restored = q.roundtrip(f);
  EXPECT_LE(f.max_abs_diff(restored), static_cast<float>(q.max_error()) + 1e-6f);
}

TEST(Quantizer, BitCounts) {
  FeatureQuantizer q(16, 6);
  EXPECT_EQ(q.total_bits(), 96u);
  EXPECT_EQ(q.payload_bytes(), 12u);
  tensor::Tensor f({1, 16});
  EXPECT_EQ(q.quantize(f).size(), 96u);
}

TEST(Quantizer, ClampsOutOfRange) {
  FeatureQuantizer q(2, 4);
  tensor::Tensor f({1, 2}, {5.0f, -5.0f});
  const auto restored = q.roundtrip(f);
  EXPECT_FLOAT_EQ(restored.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(restored.at(0, 1), -1.0f);
}

TEST(Quantizer, ExtremesAreExact) {
  FeatureQuantizer q(2, 8);
  tensor::Tensor f({1, 2}, {1.0f, -1.0f});
  const auto restored = q.roundtrip(f);
  EXPECT_FLOAT_EQ(restored.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(restored.at(0, 1), -1.0f);
}

TEST(Quantizer, RejectsBadArguments) {
  EXPECT_THROW(FeatureQuantizer(0, 8), Error);
  EXPECT_THROW(FeatureQuantizer(4, 0), Error);
  EXPECT_THROW(FeatureQuantizer(4, 17), Error);
  FeatureQuantizer q(4, 8);
  tensor::Tensor wrong({1, 3});
  EXPECT_THROW(q.quantize(wrong), Error);
  BitVec bits(31, 0);
  EXPECT_THROW(q.dequantize(bits), Error);
}

class QuantizerBitsSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(QuantizerBitsSweep, ErrorShrinksWithBits) {
  const unsigned bits = GetParam();
  FeatureQuantizer q(4, bits);
  EXPECT_NEAR(q.max_error(), 1.0 / ((1u << bits) - 1), 1e-12);
  Rng rng(13);
  tensor::Tensor f({1, 4});
  for (std::size_t i = 0; i < 4; ++i) {
    f.at(0, i) = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  EXPECT_LE(f.max_abs_diff(q.roundtrip(f)),
            static_cast<float>(q.max_error()) + 1e-6f);
}

INSTANTIATE_TEST_SUITE_P(Sweep, QuantizerBitsSweep,
                         ::testing::Values(1, 2, 4, 6, 8, 12, 16));

// --- Batched quantizer (the transmit_many data plane) -------------------

class QuantizerBatchSweep : public ::testing::TestWithParam<unsigned> {
 protected:
  static constexpr std::size_t kDims = 6;
  static constexpr std::size_t kRows = 9;

  /// Mixed batch: tanh-range rows interleaved with out-of-range rows that
  /// must clamp, plus the exact extremes.
  static tensor::Tensor mixed_batch(std::uint64_t seed) {
    Rng rng(seed);
    tensor::Tensor f({kRows, kDims});
    for (std::size_t r = 0; r < kRows; ++r) {
      for (std::size_t c = 0; c < kDims; ++c) {
        if (r % 3 == 2) {
          f.at(r, c) = static_cast<float>(rng.uniform(-4.0, 4.0));  // clamps
        } else {
          f.at(r, c) = static_cast<float>(rng.uniform(-1.0, 1.0));
        }
      }
    }
    f.at(0, 0) = 1.0f;
    f.at(0, 1) = -1.0f;
    return f;
  }

  static tensor::Tensor row_of(const tensor::Tensor& batch, std::size_t r) {
    tensor::Tensor row({1, kDims});
    for (std::size_t c = 0; c < kDims; ++c) row.at(0, c) = batch.at(r, c);
    return row;
  }
};

TEST_P(QuantizerBatchSweep, QuantizeBatchRowEqualsSingleQuantize) {
  const unsigned bits = GetParam();
  const FeatureQuantizer q(kDims, bits);
  const tensor::Tensor f = mixed_batch(50 + bits);
  const std::vector<BitVec> payloads = q.quantize_batch(f);
  ASSERT_EQ(payloads.size(), kRows);
  for (std::size_t r = 0; r < kRows; ++r) {
    EXPECT_EQ(payloads[r], q.quantize(row_of(f, r))) << "row " << r;
    EXPECT_EQ(payloads[r].size(), q.total_bits());
  }
}

TEST_P(QuantizerBatchSweep, DequantizeBatchRowEqualsSingleDequantize) {
  const unsigned bits = GetParam();
  const FeatureQuantizer q(kDims, bits);
  const std::vector<BitVec> payloads =
      q.quantize_batch(mixed_batch(60 + bits));
  const tensor::Tensor restored = q.dequantize_batch(payloads);
  ASSERT_EQ(restored.dim(0), kRows);
  ASSERT_EQ(restored.dim(1), kDims);
  for (std::size_t r = 0; r < kRows; ++r) {
    const tensor::Tensor single = q.dequantize(payloads[r]);
    for (std::size_t c = 0; c < kDims; ++c) {
      EXPECT_EQ(restored.at(r, c), single.at(0, c))  // bit-exact
          << "row " << r << " dim " << c;
    }
  }
}

TEST_P(QuantizerBatchSweep, RoundtripBatchMatchesSinglesWithinMaxError) {
  const unsigned bits = GetParam();
  const FeatureQuantizer q(kDims, bits);
  const tensor::Tensor f = mixed_batch(70 + bits);
  const tensor::Tensor restored = q.roundtrip_batch(f);
  ASSERT_EQ(restored.shape(), f.shape());
  for (std::size_t r = 0; r < kRows; ++r) {
    const tensor::Tensor single = q.roundtrip(row_of(f, r));
    for (std::size_t c = 0; c < kDims; ++c) {
      EXPECT_EQ(restored.at(r, c), single.at(0, c))  // bit-exact
          << "row " << r << " dim " << c;
      // Per-dimension reconstruction error bound, against the clamped
      // input (out-of-range dims reconstruct the nearest extreme).
      const float clamped = std::clamp(f.at(r, c), -1.0f, 1.0f);
      EXPECT_LE(std::abs(restored.at(r, c) - clamped),
                static_cast<float>(q.max_error()) + 1e-6f)
          << "row " << r << " dim " << c;
    }
  }
}

TEST(QuantizerBatch, RejectsBadShapes) {
  const FeatureQuantizer q(4, 8);
  EXPECT_THROW(q.quantize_batch(tensor::Tensor({2, 3})), Error);
  EXPECT_THROW(q.roundtrip_batch(tensor::Tensor({8})), Error);
  EXPECT_THROW(q.dequantize_batch({}), Error);
  EXPECT_THROW(q.dequantize_batch({BitVec(31, 0)}), Error);
}

INSTANTIATE_TEST_SUITE_P(Sweep, QuantizerBatchSweep,
                         ::testing::Values(1, 4, 8, 16));

// Training tests share a world.
class TrainingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(21);
    text::WorldConfig cfg;
    cfg.num_domains = 2;
    cfg.concepts_per_domain = 12;
    cfg.num_polysemous = 6;
    cfg.sentence_length = 6;
    world_ = new text::World(text::World::generate(cfg, rng));
  }
  static void TearDownTestSuite() {
    delete world_;
    world_ = nullptr;
  }
  static CodecConfig codec_config() { return test::codec_for_world(*world_); }
  static text::World* world_;
};

text::World* TrainingTest::world_ = nullptr;

TEST_F(TrainingTest, DomainPretrainingConverges) {
  Rng rng(22);
  SemanticCodec codec(codec_config(), rng);
  TrainConfig tc;
  tc.steps = 3000;
  Rng trng(23);
  const TrainStats stats =
      CodecTrainer::pretrain_domain(codec, *world_, 0, tc, trng);
  EXPECT_EQ(stats.steps, 3000u);
  EXPECT_LT(stats.final_loss, stats.first_loss);
  Rng erng(24);
  const FidelityReport report = evaluate_codec(codec, *world_, 0, 200, erng);
  EXPECT_GT(report.token_accuracy, 0.9);
  EXPECT_GT(report.sentence_exact, 0.5);
}

TEST_F(TrainingTest, TrainedDomainBeatsUntrainedDomain) {
  Rng rng(25);
  SemanticCodec codec(codec_config(), rng);
  TrainConfig tc;
  tc.steps = 2500;
  Rng trng(26);
  CodecTrainer::pretrain_domain(codec, *world_, 0, tc, trng);
  Rng erng(27);
  const auto own = evaluate_codec(codec, *world_, 0, 150, erng);
  const auto other = evaluate_codec(codec, *world_, 1, 150, erng);
  EXPECT_GT(own.token_accuracy, other.token_accuracy + 0.2);
}

TEST_F(TrainingTest, FinetuneAdaptsToIdiolect) {
  Rng rng(28);
  SemanticCodec codec(codec_config(), rng);
  TrainConfig tc;
  tc.steps = 2500;
  Rng trng(29);
  CodecTrainer::pretrain_domain(codec, *world_, 0, tc, trng);

  text::IdiolectConfig icfg;
  icfg.substitution_rate = 0.9;  // aggressive: nearly every concept renamed
  icfg.slang_prob = 1.0;         // always fresh slang the model never saw
  Rng irng(30);
  const text::Idiolect idio = text::Idiolect::generate(*world_, icfg, irng);
  ASSERT_GT(idio.size(), 5u);

  Rng erng(31);
  const auto before = evaluate_codec(codec, *world_, 0, 150, erng, &idio);
  // The general model must actually be hurt by the idiolect, otherwise the
  // adaptation claim is vacuous.
  ASSERT_LT(before.token_accuracy, 0.85);

  std::vector<Sample> buffer;
  Rng srng(32);
  for (int i = 0; i < 64; ++i) {
    buffer.push_back(CodecTrainer::draw_sample(*world_, 0, &idio, srng));
  }
  Rng frng(33);
  CodecTrainer::finetune(codec, buffer, 12, 2e-3, frng);

  Rng erng2(31);  // same eval stream for a paired comparison
  const auto after = evaluate_codec(codec, *world_, 0, 150, erng2, &idio);
  EXPECT_GT(after.token_accuracy, before.token_accuracy + 0.08);
}

TEST_F(TrainingTest, FinetuneRejectsEmptyBuffer) {
  Rng rng(35);
  SemanticCodec codec(codec_config(), rng);
  Rng frng(36);
  EXPECT_THROW(CodecTrainer::finetune(codec, {}, 1, 1e-3, frng), Error);
}

TEST_F(TrainingTest, EvaluateOnSamplesMatchesDrawLoop) {
  Rng rng(37);
  SemanticCodec codec(codec_config(), rng);
  std::vector<Sample> samples;
  Rng srng(38);
  for (int i = 0; i < 20; ++i) {
    samples.push_back(CodecTrainer::draw_sample(*world_, 0, nullptr, srng));
  }
  const auto report = evaluate_on_samples(codec, samples);
  EXPECT_EQ(report.sentences, 20u);
  EXPECT_GE(report.token_accuracy, 0.0);
  EXPECT_LE(report.token_accuracy, 1.0);
}

TEST_F(TrainingTest, QuantizationAwareTrainingHelps) {
  // Train two codecs, one with QAT noise at the 3-bit quantizer scale, and
  // compare accuracy through the coarse quantizer.
  const unsigned bits = 3;
  FeatureQuantizer q(codec_config().feature_dim, bits);
  TrainConfig plain;
  plain.steps = 2500;
  TrainConfig noisy = plain;
  noisy.feature_noise = q.max_error() / 2.0;

  Rng rng_a(40), rng_b(40);
  SemanticCodec a(codec_config(), rng_a);
  SemanticCodec b(codec_config(), rng_b);
  Rng ta(41), tb(41);
  CodecTrainer::pretrain_domain(a, *world_, 0, plain, ta);
  CodecTrainer::pretrain_domain(b, *world_, 0, noisy, tb);

  auto quantized_accuracy = [&](SemanticCodec& codec) {
    Rng erng(42);
    metrics::OnlineStats acc;
    for (int i = 0; i < 200; ++i) {
      const auto s = CodecTrainer::draw_sample(*world_, 0, nullptr, erng);
      const auto f = codec.encoder().encode(s.surface);
      const auto decoded = codec.decoder().decode(q.roundtrip(f));
      acc.add(metrics::token_accuracy(s.meanings, decoded));
    }
    return acc.mean();
  };
  EXPECT_GE(quantized_accuracy(b) + 0.02, quantized_accuracy(a));
}

}  // namespace
}  // namespace semcache::semantic
