// Unit tests for semcache::nn. The backbone is numerical gradient checking:
// every layer's analytic backward pass is validated against central finite
// differences, which is what makes the explicit-backward design trustworthy.
#include <gtest/gtest.h>

#include "nn/gradcheck.hpp"
#include "nn/gru.hpp"
#include "nn/layers.hpp"
#include "nn/loss.hpp"
#include "nn/model.hpp"
#include "nn/optimizer.hpp"
#include "tensor/ops.hpp"

namespace semcache::nn {
namespace {

using tensor::Tensor;

constexpr double kGradTol = 2e-2;  // float32 + central differences

// Gradcheck scaffold: forward -> loss -> backward, then compare.
template <typename Forward>
GradCheckResult check_layer(std::vector<Parameter*> params, Forward forward) {
  // Build a fixed random "loss projection" so the scalar loss exercises all
  // outputs: loss = sum(w ⊙ y).
  Rng rng(99);
  const Tensor y0 = forward();
  const Tensor w = Tensor::uniform(y0.shape(), 1.0f, rng);
  auto loss_fn = [&]() -> double {
    return static_cast<double>(tensor::dot(forward(), w));
  };
  return gradcheck(loss_fn, params, 1e-3, 0);
}

TEST(GradCheck, LinearLayer) {
  Rng rng(1);
  Linear layer(5, 4, rng);
  const Tensor x = Tensor::uniform({3, 5}, 1.0f, rng);
  Rng wrng(99);
  const Tensor w = Tensor::uniform({3, 4}, 1.0f, wrng);
  auto loss_fn = [&]() -> double {
    return static_cast<double>(tensor::dot(layer.forward(x), w));
  };
  loss_fn();
  Optimizer::zero_grad(layer.parameters());
  layer.forward(x);
  layer.backward(w);  // dL/dy = w for this loss
  const auto result = gradcheck(loss_fn, layer.parameters());
  EXPECT_TRUE(result.ok(kGradTol)) << "rel err " << result.max_rel_error;
  EXPECT_GT(result.checked, 20u);
}

TEST(GradCheck, LinearInputGradient) {
  Rng rng(2);
  Linear layer(4, 3, rng);
  Tensor x = Tensor::uniform({2, 4}, 1.0f, rng);
  Rng wrng(99);
  const Tensor w = Tensor::uniform({2, 3}, 1.0f, wrng);
  // Wrap x as a parameter so gradcheck can perturb it.
  Parameter px("x", x);
  auto loss_fn = [&]() -> double {
    return static_cast<double>(tensor::dot(layer.forward(px.value), w));
  };
  layer.forward(px.value);
  px.grad = layer.backward(w);
  Parameter* params[] = {&px};
  const auto result = gradcheck(loss_fn, params);
  EXPECT_TRUE(result.ok(kGradTol)) << "rel err " << result.max_rel_error;
}

template <typename LayerT>
void check_activation_input_grad() {
  Rng rng(3);
  LayerT layer;
  Parameter px("x", Tensor::uniform({2, 6}, 2.0f, rng));
  Rng wrng(99);
  const Tensor w = Tensor::uniform({2, 6}, 1.0f, wrng);
  auto loss_fn = [&]() -> double {
    return static_cast<double>(tensor::dot(layer.forward(px.value), w));
  };
  layer.forward(px.value);
  px.grad = layer.backward(w);
  Parameter* params[] = {&px};
  const auto result = gradcheck(loss_fn, params);
  EXPECT_TRUE(result.ok(kGradTol)) << "rel err " << result.max_rel_error;
}

TEST(GradCheck, ReluInput) { check_activation_input_grad<ReLU>(); }
TEST(GradCheck, TanhInput) { check_activation_input_grad<Tanh>(); }
TEST(GradCheck, SigmoidInput) { check_activation_input_grad<Sigmoid>(); }

TEST(GradCheck, LayerNormParamsAndInput) {
  Rng rng(4);
  LayerNorm layer(5);
  Parameter px("x", Tensor::uniform({3, 5}, 1.5f, rng));
  Rng wrng(99);
  const Tensor w = Tensor::uniform({3, 5}, 1.0f, wrng);
  auto loss_fn = [&]() -> double {
    return static_cast<double>(tensor::dot(layer.forward(px.value), w));
  };
  Optimizer::zero_grad(layer.parameters());
  layer.forward(px.value);
  px.grad = layer.backward(w);
  std::vector<Parameter*> params = layer.parameters();
  params.push_back(&px);
  const auto result = gradcheck(loss_fn, params);
  EXPECT_TRUE(result.ok(kGradTol)) << "rel err " << result.max_rel_error;
}

TEST(GradCheck, SequentialMlp) {
  Rng rng(5);
  Sequential mlp;
  mlp.add(std::make_unique<Linear>(6, 8, rng))
      .add(std::make_unique<ReLU>())
      .add(std::make_unique<Linear>(8, 3, rng))
      .add(std::make_unique<Tanh>());
  const Tensor x = Tensor::uniform({2, 6}, 1.0f, rng);
  Rng wrng(99);
  const Tensor w = Tensor::uniform({2, 3}, 1.0f, wrng);
  auto loss_fn = [&]() -> double {
    return static_cast<double>(tensor::dot(mlp.forward(x), w));
  };
  Optimizer::zero_grad(mlp.parameters());
  mlp.forward(x);
  mlp.backward(w);
  const auto result = gradcheck(loss_fn, mlp.parameters(), 1e-3, 40);
  EXPECT_TRUE(result.ok(kGradTol)) << "rel err " << result.max_rel_error;
}

TEST(GradCheck, EmbeddingGradient) {
  Rng rng(6);
  Embedding emb(10, 4, rng);
  const std::vector<std::int32_t> ids = {2, 7, 2};  // repeated id accumulates
  Rng wrng(99);
  const Tensor w = Tensor::uniform({3, 4}, 1.0f, wrng);
  auto loss_fn = [&]() -> double {
    return static_cast<double>(tensor::dot(emb.forward(ids), w));
  };
  Optimizer::zero_grad(emb.parameters());
  emb.forward(ids);
  emb.backward(w);
  const auto result = gradcheck(loss_fn, emb.parameters());
  EXPECT_TRUE(result.ok(kGradTol)) << "rel err " << result.max_rel_error;
}

TEST(GradCheck, GruFullBptt) {
  Rng rng(7);
  Gru gru(3, 4, rng);
  const Tensor xs = Tensor::uniform({5, 3}, 1.0f, rng);
  Rng wrng(99);
  const Tensor w = Tensor::uniform({5, 4}, 1.0f, wrng);
  auto loss_fn = [&]() -> double {
    return static_cast<double>(tensor::dot(gru.forward(xs), w));
  };
  Optimizer::zero_grad(gru.parameters());
  gru.forward(xs);
  gru.backward(w);
  const auto result = gradcheck(loss_fn, gru.parameters(), 1e-3, 0);
  EXPECT_TRUE(result.ok(kGradTol)) << "rel err " << result.max_rel_error;
}

TEST(GradCheck, GruInputGradient) {
  Rng rng(8);
  Gru gru(3, 4, rng);
  Parameter px("xs", Tensor::uniform({4, 3}, 1.0f, rng));
  Rng wrng(99);
  const Tensor w = Tensor::uniform({4, 4}, 1.0f, wrng);
  auto loss_fn = [&]() -> double {
    return static_cast<double>(tensor::dot(gru.forward(px.value), w));
  };
  gru.forward(px.value);
  px.grad = gru.backward(w);
  Parameter* params[] = {&px};
  const auto result = gradcheck(loss_fn, params);
  EXPECT_TRUE(result.ok(kGradTol)) << "rel err " << result.max_rel_error;
}

TEST(GradCheck, SoftmaxCrossEntropy) {
  Rng rng(9);
  Parameter logits("logits", Tensor::uniform({4, 5}, 1.0f, rng));
  const std::vector<std::int32_t> targets = {0, 3, 2, 4};
  SoftmaxCrossEntropy ce;
  auto loss_fn = [&]() -> double {
    return ce.forward(logits.value, targets);
  };
  loss_fn();
  logits.grad = ce.backward();
  Parameter* params[] = {&logits};
  const auto result = gradcheck(loss_fn, params);
  EXPECT_TRUE(result.ok(kGradTol)) << "rel err " << result.max_rel_error;
}

TEST(GradCheck, MeanSquaredError) {
  Rng rng(10);
  Parameter pred("pred", Tensor::uniform({3, 3}, 1.0f, rng));
  const Tensor target = Tensor::uniform({3, 3}, 1.0f, rng);
  MeanSquaredError mse;
  auto loss_fn = [&]() -> double { return mse.forward(pred.value, target); };
  loss_fn();
  pred.grad = mse.backward();
  Parameter* params[] = {&pred};
  const auto result = gradcheck(loss_fn, params);
  EXPECT_TRUE(result.ok(kGradTol)) << "rel err " << result.max_rel_error;
}

TEST(Loss, CrossEntropyKnownValue) {
  // Uniform logits over 4 classes -> loss = ln(4).
  Tensor logits({1, 4});
  SoftmaxCrossEntropy ce;
  const std::vector<std::int32_t> t = {2};
  EXPECT_NEAR(ce.forward(logits, t), std::log(4.0), 1e-6);
}

TEST(Loss, CrossEntropyRejectsBadTarget) {
  Tensor logits({1, 3});
  SoftmaxCrossEntropy ce;
  const std::vector<std::int32_t> t = {3};
  EXPECT_THROW(ce.forward(logits, t), Error);
}

TEST(Loss, MseKnownValue) {
  Tensor a({2}, {1, 3});
  Tensor b({2}, {2, 1});
  MeanSquaredError mse;
  EXPECT_DOUBLE_EQ(mse.forward(a, b), (1.0 + 4.0) / 2.0);
}

TEST(Relu, ForwardClampsNegative) {
  ReLU relu;
  Tensor x({1, 3}, {-1, 0, 2});
  EXPECT_TRUE(relu.forward(x).equals(Tensor({1, 3}, {0, 0, 2})));
}

TEST(Sequential, ParametersCollectedInOrder) {
  Rng rng(11);
  Sequential mlp;
  mlp.add(std::make_unique<Linear>(2, 3, rng, "first"))
      .add(std::make_unique<ReLU>())
      .add(std::make_unique<Linear>(3, 2, rng, "second"));
  const auto params = mlp.parameters();
  ASSERT_EQ(params.size(), 4u);
  EXPECT_EQ(params[0]->name, "first.w");
  EXPECT_EQ(params[3]->name, "second.b");
}

TEST(Embedding, OutOfRangeIdThrows) {
  Rng rng(12);
  Embedding emb(5, 2, rng);
  const std::vector<std::int32_t> bad = {5};
  EXPECT_THROW(emb.forward(bad), Error);
  const std::vector<std::int32_t> neg = {-1};
  EXPECT_THROW(emb.forward(neg), Error);
}

TEST(Optimizer, SgdStepDirection) {
  Rng rng(13);
  Parameter p("p", Tensor({2}, {1.0f, 1.0f}));
  p.grad = Tensor({2}, {1.0f, -1.0f});
  Sgd sgd(0.5);
  Parameter* params[] = {&p};
  sgd.step(params);
  EXPECT_FLOAT_EQ(p.value.at(0), 0.5f);
  EXPECT_FLOAT_EQ(p.value.at(1), 1.5f);
}

TEST(Optimizer, SgdMomentumAccumulates) {
  Parameter p("p", Tensor({1}, {0.0f}));
  Sgd sgd(1.0, 0.5);
  Parameter* params[] = {&p};
  p.grad = Tensor({1}, {1.0f});
  sgd.step(params);  // v=1, p=-1
  p.grad = Tensor({1}, {1.0f});
  sgd.step(params);  // v=1.5, p=-2.5
  EXPECT_FLOAT_EQ(p.value.at(0), -2.5f);
}

TEST(Optimizer, AdamConvergesOnQuadratic) {
  // Minimize (x - 3)^2 by gradient descent.
  Parameter p("x", Tensor({1}, {-5.0f}));
  Adam adam(0.1);
  Parameter* params[] = {&p};
  for (int i = 0; i < 500; ++i) {
    p.grad = Tensor({1}, {2.0f * (p.value.at(0) - 3.0f)});
    adam.step(params);
  }
  EXPECT_NEAR(p.value.at(0), 3.0f, 1e-2f);
}

TEST(Optimizer, ClipGradNorm) {
  Parameter p("p", Tensor({2}));
  p.grad = Tensor({2}, {3.0f, 4.0f});  // norm 5
  Parameter* params[] = {&p};
  const double pre = Optimizer::clip_grad_norm(params, 1.0);
  EXPECT_DOUBLE_EQ(pre, 5.0);
  EXPECT_NEAR(tensor::l2_norm(p.grad), 1.0f, 1e-5f);
  // Below the cap: untouched.
  p.grad = Tensor({2}, {0.3f, 0.4f});
  Optimizer::clip_grad_norm(params, 1.0);
  EXPECT_NEAR(tensor::l2_norm(p.grad), 0.5f, 1e-6f);
}

TEST(Optimizer, ZeroGrad) {
  Parameter p("p", Tensor({2}));
  p.grad = Tensor({2}, {1.0f, 2.0f});
  Parameter* params[] = {&p};
  Optimizer::zero_grad(params);
  EXPECT_EQ(p.grad.at(0), 0.0f);
  EXPECT_EQ(p.grad.at(1), 0.0f);
}

TEST(Training, XorConverges) {
  // Classic sanity check: a 2-layer MLP learns XOR.
  Rng rng(21);
  Sequential mlp;
  mlp.add(std::make_unique<Linear>(2, 8, rng))
      .add(std::make_unique<Tanh>())
      .add(std::make_unique<Linear>(8, 2, rng));
  Adam opt(0.02);
  SoftmaxCrossEntropy ce;
  const float inputs[4][2] = {{0, 0}, {0, 1}, {1, 0}, {1, 1}};
  const std::vector<std::int32_t> labels = {0, 1, 1, 0};
  Tensor x({4, 2});
  for (std::size_t i = 0; i < 4; ++i) {
    x.at(i, 0) = inputs[i][0];
    x.at(i, 1) = inputs[i][1];
  }
  double loss = 0.0;
  for (int epoch = 0; epoch < 800; ++epoch) {
    Optimizer::zero_grad(mlp.parameters());
    loss = ce.forward(mlp.forward(x), labels);
    mlp.backward(ce.backward());
    opt.step(mlp.parameters());
  }
  EXPECT_LT(loss, 0.05);
  const auto pred = tensor::row_argmax(mlp.forward(x));
  EXPECT_EQ(pred, labels);
}

TEST(ParameterSet, FlattenUnflattenRoundTrip) {
  Rng rng(31);
  Linear l1(3, 4, rng), l2(4, 2, rng);
  ParameterSet set;
  set.add_all(l1.parameters());
  set.add_all(l2.parameters());
  EXPECT_EQ(set.scalar_count(), 3u * 4 + 4 + 4 * 2 + 2);
  auto flat = set.flatten_values();
  for (auto& f : flat) f += 1.0f;
  set.unflatten_values(flat);
  EXPECT_EQ(set.flatten_values(), flat);
}

TEST(ParameterSet, ApplyDelta) {
  Rng rng(32);
  Linear l(2, 2, rng);
  ParameterSet set(l.parameters());
  const auto before = set.flatten_values();
  std::vector<float> delta(set.scalar_count(), 0.5f);
  set.apply_delta(delta);
  const auto after = set.flatten_values();
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_FLOAT_EQ(after[i], before[i] + 0.5f);
  }
  std::vector<float> wrong(3);
  EXPECT_THROW(set.apply_delta(wrong), Error);
}

TEST(ParameterSet, SerializeRestoresExactly) {
  Rng rng(33);
  Linear a(3, 3, rng, "m");
  Linear b(3, 3, rng, "m");  // same names/shapes, different weights
  ParameterSet sa(a.parameters());
  ParameterSet sb(b.parameters());
  EXPECT_FALSE(sa.values_equal(sb));
  ByteWriter w;
  sa.serialize(w);
  ByteReader r(w.bytes());
  sb.deserialize(r);
  EXPECT_TRUE(sa.values_equal(sb));
  EXPECT_EQ(w.size(), sa.byte_size());
}

TEST(ParameterSet, DeserializeNameMismatchThrows) {
  Rng rng(34);
  Linear a(2, 2, rng, "alpha");
  Linear b(2, 2, rng, "beta");
  ParameterSet sa(a.parameters());
  ParameterSet sb(b.parameters());
  ByteWriter w;
  sa.serialize(w);
  ByteReader r(w.bytes());
  EXPECT_THROW(sb.deserialize(r), Error);
}

TEST(ParameterSet, CopyValuesAndDiff) {
  Rng rng(35);
  Linear a(2, 3, rng, "m"), b(2, 3, rng, "m");
  ParameterSet sa(a.parameters()), sb(b.parameters());
  sb.copy_values_from(sa);
  EXPECT_TRUE(sa.values_equal(sb));
  EXPECT_FLOAT_EQ(sa.max_abs_diff(sb), 0.0f);
  b.weight().value.at(0) += 0.25f;
  EXPECT_FALSE(sa.values_equal(sb));
  EXPECT_FLOAT_EQ(sa.max_abs_diff(sb), 0.25f);
}

}  // namespace
}  // namespace semcache::nn
