// Failure-injection tests: lost gradient-sync messages open version gaps;
// the gap-recovery protocol restores replica byte-identity with a full
// decoder-state transfer. Also covers the selector configuration switch.
#include <gtest/gtest.h>

#include "core/system.hpp"
#include "test_util.hpp"

namespace semcache::core {
namespace {

SystemConfig fi_config() {
  SystemConfig config = test::tiny_system_config(501);
  config.world.concepts_per_domain = 14;
  config.pretrain.steps = 1500;
  config.feature_bits = 4;
  config.oracle_selection = true;
  config.buffer_trigger = 8;
  config.finetune_epochs = 3;
  return config;
}

void pump(SemanticEdgeSystem& system, const std::string& from,
          const std::string& to, std::size_t messages) {
  for (std::size_t i = 0; i < messages; ++i) {
    text::Sentence msg = system.sample_message(from, 0);
    system.transmit(from, to, msg);
  }
}

TEST(FailureInjection, LostSyncOpensGapThenResyncRepairs) {
  SystemConfig config = fi_config();
  config.sync_loss_probability = 1.0;  // every sync message vanishes
  auto system = SemanticEdgeSystem::build(config);
  text::IdiolectConfig idio;
  idio.substitution_rate = 0.6;
  system->register_user("u", 0, &idio);
  system->register_user("v", 1, nullptr);

  // Enough traffic for at least two updates, all lost.
  pump(*system, "u", "v", 2 * config.buffer_trigger + 2);
  ASSERT_GE(system->stats().updates, 2u);
  EXPECT_EQ(system->stats().sync_drops, system->stats().updates);
  EXPECT_FALSE(system->replicas_in_sync("u", 0, 0, 1));  // diverged

  // Heal the channel: the next delivered update detects the gap and does a
  // full-state resync.
  system->set_sync_loss_probability(0.0);
  pump(*system, "u", "v", config.buffer_trigger + 2);
  ASSERT_GT(system->stats().updates, system->stats().sync_drops);
  EXPECT_GE(system->stats().full_resyncs, 1u);
  EXPECT_GT(system->stats().resync_bytes, 0u);
  EXPECT_TRUE(system->replicas_in_sync("u", 0, 0, 1));
}

TEST(FailureInjection, NoLossMeansNoResyncs) {
  auto system = SemanticEdgeSystem::build(fi_config());
  text::IdiolectConfig idio;
  idio.substitution_rate = 0.6;
  system->register_user("u", 0, &idio);
  system->register_user("v", 1, nullptr);
  pump(*system, "u", "v", 3 * 8 + 2);
  ASSERT_GE(system->stats().updates, 2u);
  EXPECT_EQ(system->stats().sync_drops, 0u);
  EXPECT_EQ(system->stats().full_resyncs, 0u);
  EXPECT_TRUE(system->replicas_in_sync("u", 0, 0, 1));
}

TEST(FailureInjection, PartialLossEventuallyConverges) {
  SystemConfig config = fi_config();
  config.sync_loss_probability = 0.5;
  auto system = SemanticEdgeSystem::build(config);
  text::IdiolectConfig idio;
  idio.substitution_rate = 0.6;
  system->register_user("u", 0, &idio);
  system->register_user("v", 1, nullptr);
  pump(*system, "u", "v", 8 * config.buffer_trigger);
  const auto& st = system->stats();
  EXPECT_GT(st.sync_drops, 0u);
  EXPECT_LT(st.sync_drops, st.updates);
  // After the last DELIVERED update the replicas must agree (either via the
  // normal path or a gap resync). If the final update was dropped they may
  // legitimately lag — force one more delivered round.
  system->set_sync_loss_probability(0.0);
  pump(*system, "u", "v", config.buffer_trigger + 2);
  EXPECT_TRUE(system->replicas_in_sync("u", 0, 0, 1));
}

TEST(FailureInjection, LossProbabilityValidated) {
  auto system = SemanticEdgeSystem::build(fi_config());
  EXPECT_THROW(system->set_sync_loss_probability(1.5), Error);
  EXPECT_THROW(system->set_sync_loss_probability(-0.1), Error);
}

TEST(SelectorConfig, ContextSelectorWorksInCore) {
  SystemConfig config = fi_config();
  config.oracle_selection = false;
  config.selector = "context";
  auto system = SemanticEdgeSystem::build(config);
  system->register_user("u", 0, nullptr);
  system->register_user("v", 1, nullptr);
  // A sticky conversation: the selector should track the topic.
  std::size_t correct = 0;
  for (int i = 0; i < 10; ++i) {
    const auto msg = system->sample_message("u", 1);
    const auto r = system->transmit("u", "v", msg);
    if (r.selection_correct) ++correct;
  }
  EXPECT_GE(correct, 7u);
  EXPECT_EQ(system->selector().name(), "context(naive_bayes)");
}

TEST(SelectorConfig, UnknownSelectorRejected) {
  SystemConfig config = fi_config();
  config.selector = "oracle9000";
  EXPECT_THROW(SemanticEdgeSystem::build(config), Error);
}

}  // namespace
}  // namespace semcache::core
