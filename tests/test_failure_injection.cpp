// Failure-injection tests: lost gradient-sync messages are retried with
// exponential backoff; a message that exhausts its retry budget expires
// and opens a version gap, which the gap-recovery protocol repairs with a
// full decoder-state transfer on the next delivered update. Also covers
// the selector configuration switch. (The deterministic fault plane
// itself — coins, corruption, waves under faults — is pinned by
// test_faults; this suite covers the end-to-end recovery story.)
#include <gtest/gtest.h>

#include "core/system.hpp"
#include "test_util.hpp"

namespace semcache::core {
namespace {

SystemConfig fi_config() {
  SystemConfig config = test::tiny_system_config(501);
  config.world.concepts_per_domain = 14;
  config.pretrain.steps = 1500;
  config.feature_bits = 4;
  config.oracle_selection = true;
  config.buffer_trigger = 8;
  config.finetune_epochs = 3;
  return config;
}

void pump(SemanticEdgeSystem& system, const std::string& from,
          const std::string& to, std::size_t messages) {
  for (std::size_t i = 0; i < messages; ++i) {
    text::Sentence msg = system.sample_message(from, 0);
    system.transmit(from, to, msg);
  }
}

TEST(FailureInjection, LostSyncRetriesThenExpiresThenResyncRepairs) {
  SystemConfig config = fi_config();
  config.faults.sync_loss = 1.0;  // every attempt of every message vanishes
  config.faults.max_attempts = 3;
  auto system = SemanticEdgeSystem::build(config);
  text::IdiolectConfig idio;
  idio.substitution_rate = 0.6;
  system->register_user("u", 0, &idio);
  system->register_user("v", 1, nullptr);

  // Enough traffic for at least two updates, all lost after a full retry
  // ladder each: every attempt drops, every message expires.
  pump(*system, "u", "v", 2 * config.buffer_trigger + 2);
  const std::size_t updates = system->stats().updates;
  ASSERT_GE(updates, 2u);
  EXPECT_EQ(system->stats().sync_drops, updates * config.faults.max_attempts);
  EXPECT_EQ(system->stats().sync_retries,
            updates * (config.faults.max_attempts - 1));
  EXPECT_EQ(system->stats().sync_expired, updates);
  EXPECT_FALSE(system->replicas_in_sync("u", 0, 0, 1));  // diverged

  // Heal the channel: the next delivered update detects the gap and does a
  // full-state resync.
  system->set_sync_loss_probability(0.0);
  pump(*system, "u", "v", config.buffer_trigger + 2);
  ASSERT_GT(system->stats().updates, updates);
  EXPECT_GE(system->stats().full_resyncs, 1u);
  EXPECT_GT(system->stats().resync_bytes, 0u);
  // Healing to p = 0 drops back to the fault-free fast path, whose wire
  // framing carries no delivery acks (acks arm the retry timer, which only
  // exists on the faulted path).
  EXPECT_EQ(system->stats().sync_ack_bytes, 0u);
  EXPECT_TRUE(system->replicas_in_sync("u", 0, 0, 1));
}

TEST(FailureInjection, NoLossMeansNoResyncs) {
  auto system = SemanticEdgeSystem::build(fi_config());
  text::IdiolectConfig idio;
  idio.substitution_rate = 0.6;
  system->register_user("u", 0, &idio);
  system->register_user("v", 1, nullptr);
  pump(*system, "u", "v", 3 * 8 + 2);
  ASSERT_GE(system->stats().updates, 2u);
  EXPECT_EQ(system->stats().sync_drops, 0u);
  EXPECT_EQ(system->stats().sync_retries, 0u);
  EXPECT_EQ(system->stats().sync_expired, 0u);
  EXPECT_EQ(system->stats().full_resyncs, 0u);
  EXPECT_TRUE(system->replicas_in_sync("u", 0, 0, 1));
}

TEST(FailureInjection, PartialLossRetriesAndEventuallyConverges) {
  SystemConfig config = fi_config();
  config.faults.sync_loss = 0.5;
  auto system = SemanticEdgeSystem::build(config);
  text::IdiolectConfig idio;
  idio.substitution_rate = 0.6;
  system->register_user("u", 0, &idio);
  system->register_user("v", 1, nullptr);
  pump(*system, "u", "v", 8 * config.buffer_trigger);
  const auto& st = system->stats();
  EXPECT_GT(st.sync_drops, 0u);
  // Retries mop up most losses before they expire: with p=0.5 and 4
  // attempts only 1/16 of messages die, so retries must outnumber
  // expiries on any realistic draw.
  EXPECT_GT(st.sync_retries, st.sync_expired);
  EXPECT_LT(st.sync_expired, st.updates);
  // At p=0.5 some intact attempts get through, and each delivered sync is
  // acked on the reverse backbone path.
  EXPECT_GT(st.sync_ack_bytes, 0u);
  // After the last DELIVERED update the replicas must agree (either via the
  // normal path or a gap resync). If the final update expired they may
  // legitimately lag — force one more delivered round.
  system->set_sync_loss_probability(0.0);
  pump(*system, "u", "v", config.buffer_trigger + 2);
  EXPECT_TRUE(system->replicas_in_sync("u", 0, 0, 1));
}

TEST(FailureInjection, LossProbabilityValidated) {
  auto system = SemanticEdgeSystem::build(fi_config());
  EXPECT_THROW(system->set_sync_loss_probability(1.5), Error);
  EXPECT_THROW(system->set_sync_loss_probability(-0.1), Error);
}

TEST(SelectorConfig, ContextSelectorWorksInCore) {
  SystemConfig config = fi_config();
  config.oracle_selection = false;
  config.selector = "context";
  auto system = SemanticEdgeSystem::build(config);
  system->register_user("u", 0, nullptr);
  system->register_user("v", 1, nullptr);
  // A sticky conversation: the selector should track the topic.
  std::size_t correct = 0;
  for (int i = 0; i < 10; ++i) {
    const auto msg = system->sample_message("u", 1);
    const auto r = system->transmit("u", "v", msg);
    if (r.selection_correct) ++correct;
  }
  EXPECT_GE(correct, 7u);
  EXPECT_EQ(system->selector().name(), "context(naive_bayes)");
}

TEST(SelectorConfig, UnknownSelectorRejected) {
  SystemConfig config = fi_config();
  config.selector = "oracle9000";
  EXPECT_THROW(SemanticEdgeSystem::build(config), Error);
}

}  // namespace
}  // namespace semcache::core
