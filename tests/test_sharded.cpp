// Sharded city-scale serving: determinism and the memory audit.
//
// Two contracts pinned here:
//
//  1. SHARD-COUNT INVARIANCE — a ShardedEdgeServing with K shards driven
//     through ParallelDispatcher is byte-identical to the single-system
//     reference for the same enqueue stream: every data-plane report
//     field, the merged SystemStats, sender slot state, and decoder
//     weights match exactly, for any K and any per-shard thread count.
//     (Latency is additionally identical at K = 1, where the deployment
//     IS the reference; across K > 1 shards, pairs that would queue
//     behind each other inside one simulator stop contending — that
//     timing decontention is the point of sharding, so latency_s is the
//     one field excluded from the K > 1 comparison.)
//  2. MEMORY AUDIT — per-user cost is bytes plus deltas, not model
//     clones: establishing slots materializes NOTHING (user_model_bytes
//     stays 0 until a fine-tune or sync apply fires), and the fixed
//     serving-replica cost is bounded by workers × domains, not users.
//
// Sender names matter: with FNV-1a ownership, senders {a, c, d} land on
// 2 distinct shards at K = 2 and on 3 at K = 3, so the waves here
// genuinely fan out across shards rather than collapsing onto one.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/hashing.hpp"
#include "core/dispatcher.hpp"
#include "core/sharded.hpp"
#include "core/system.hpp"
#include "test_util.hpp"

namespace semcache::core {
namespace {

SystemConfig sharded_config(std::uint64_t seed, std::size_t num_threads) {
  SystemConfig config = test::tiny_system_config(seed);
  config.pretrain.steps = 150;  // lightly trained: determinism, not accuracy
  config.buffer_trigger = 4;    // fine-tunes fire mid-wave
  config.buffer_capacity = 32;
  config.finetune_epochs = 2;
  config.num_edges = 2;
  config.num_threads = num_threads;
  return config;
}

/// One enqueue: (sender, receiver, one message per listed domain).
struct PairSpec {
  std::string sender;
  std::string receiver;
  std::vector<std::size_t> domains;
};

// Three waves: multi-sender fan-out, a shared-sender merge with mid-wave
// fine-tune pressure (trigger = 4), and a cross/intra-edge mix.
const std::vector<std::vector<PairSpec>> kWaves = {
    {{"a", "b", {0, 1, 0}}, {"c", "d", {1, 0}}, {"d", "c", {0, 0, 1}}},
    {{"a", "b", {0, 0}}, {"a", "b", {0, 0, 1}}, {"c", "a", {1, 1, 1, 1}}},
    {{"d", "b", {1, 0, 1, 0}}, {"c", "d", {0}}, {"a", "c", {0, 1}}},
};

struct ServedMessage {
  TransmitReport report;
  int completions = 0;
};

/// Drive `dispatcher` through kWaves with the pre-sampled sentences.
/// `run_after_flush` drives the single-system simulator (the sharded
/// front door drains its shards' simulators inside flush).
std::vector<std::vector<std::vector<ServedMessage>>> drive(
    ParallelDispatcher& dispatcher,
    const std::vector<std::vector<std::vector<text::Sentence>>>& sentences,
    edge::Simulator* run_after_flush) {
  std::vector<std::vector<std::vector<ServedMessage>>> served(kWaves.size());
  for (std::size_t w = 0; w < kWaves.size(); ++w) {
    for (std::size_t p = 0; p < kWaves[w].size(); ++p) {
      dispatcher.enqueue(kWaves[w][p].sender, kWaves[w][p].receiver,
                         sentences[w][p]);
    }
    // Merged enqueues share a completion index, so size by the dispatcher
    // queue, not the spec list.
    served[w].resize(dispatcher.queued_pairs());
    dispatcher.flush([&served, w](std::size_t pair, std::size_t index,
                                  TransmitReport report) {
      auto& slot_list = served[w][pair];
      if (slot_list.size() <= index) slot_list.resize(index + 1);
      slot_list[index].report = std::move(report);
      ++slot_list[index].completions;
    });
    if (run_after_flush != nullptr) run_after_flush->run();
  }
  return served;
}

void expect_data_plane_equal(const TransmitReport& ref,
                             const TransmitReport& got, bool compare_latency,
                             const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(ref.domain_true, got.domain_true);
  EXPECT_EQ(ref.domain_selected, got.domain_selected);
  EXPECT_EQ(ref.selection_correct, got.selection_correct);
  EXPECT_EQ(ref.decoded_meanings, got.decoded_meanings);
  EXPECT_EQ(ref.token_accuracy, got.token_accuracy);  // exact doubles
  EXPECT_EQ(ref.exact, got.exact);
  EXPECT_EQ(ref.mismatch, got.mismatch);
  EXPECT_EQ(ref.payload_bytes, got.payload_bytes);
  EXPECT_EQ(ref.airtime_bits, got.airtime_bits);
  EXPECT_EQ(ref.sync_bytes, got.sync_bytes);
  EXPECT_EQ(ref.output_return_bytes, got.output_return_bytes);
  EXPECT_EQ(ref.triggered_update, got.triggered_update);
  EXPECT_EQ(ref.established_user_model, got.established_user_model);
  EXPECT_EQ(ref.general_cache_hit, got.general_cache_hit);
  if (compare_latency) {
    EXPECT_EQ(ref.latency_s, got.latency_s);
  }
}

void expect_stats_equal(const SystemStats& ref, const SystemStats& got) {
  EXPECT_EQ(ref.messages, got.messages);
  EXPECT_EQ(ref.feature_bytes, got.feature_bytes);
  EXPECT_EQ(ref.uplink_bytes, got.uplink_bytes);
  EXPECT_EQ(ref.downlink_bytes, got.downlink_bytes);
  EXPECT_EQ(ref.sync_bytes, got.sync_bytes);
  EXPECT_EQ(ref.output_return_bytes, got.output_return_bytes);
  EXPECT_EQ(ref.updates, got.updates);
  EXPECT_EQ(ref.selection_errors, got.selection_errors);
  EXPECT_EQ(ref.sync_drops, got.sync_drops);
  EXPECT_EQ(ref.sync_retries, got.sync_retries);
  EXPECT_EQ(ref.sync_corrupt_drops, got.sync_corrupt_drops);
  EXPECT_EQ(ref.sync_duplicates, got.sync_duplicates);
  EXPECT_EQ(ref.sync_expired, got.sync_expired);
  EXPECT_EQ(ref.sync_ack_bytes, got.sync_ack_bytes);
  EXPECT_EQ(ref.full_resyncs, got.full_resyncs);
  EXPECT_EQ(ref.resync_bytes, got.resync_bytes);
  EXPECT_EQ(ref.degraded_serves, got.degraded_serves);
  // outage_drops / outage_queued are deliberately NOT compared here:
  // outages are keyed by per-shard simulated time, which legitimately
  // differs between a K-shard deployment and the single-system reference.
}

TEST(StableHash, OwnershipIsDeterministicAndInRange) {
  static_assert(common::stable_hash("a") != common::stable_hash("b"));
  // The documented FNV-1a pin: ownership must never drift across builds.
  static_assert(common::stable_hash("") == 1469598103934665603ULL);
  EXPECT_EQ(common::shard_of("anyone", 1), 0u);
  for (std::size_t k = 2; k <= 5; ++k) {
    EXPECT_LT(common::shard_of("anyone", k), k);
    EXPECT_EQ(common::shard_of("anyone", k), common::shard_of("anyone", k));
  }
}

TEST(ShardedServing, KShardsMatchSingleSystemReference) {
  unsetenv("SEMCACHE_THREADS");
  unsetenv("SEMCACHE_SHARDS");

  // The reference deployment; also the source of every message (serving
  // never consumes the sequential RNG stream — channel and fine-tune
  // draws are position-independent forks — so sampling only here keeps
  // every variant's inputs identical without lockstep sampling).
  auto reference = SemanticEdgeSystem::build(sharded_config(2027, 0));
  const std::vector<std::pair<std::string, std::size_t>> users = {
      {"a", 0}, {"b", 1}, {"c", 0}, {"d", 1}};
  for (const auto& [name, edge] : users) {
    reference->register_user(name, edge, nullptr);
  }
  std::vector<std::vector<std::vector<text::Sentence>>> sentences(
      kWaves.size());
  for (std::size_t w = 0; w < kWaves.size(); ++w) {
    sentences[w].resize(kWaves[w].size());
    for (std::size_t p = 0; p < kWaves[w].size(); ++p) {
      for (const std::size_t d : kWaves[w][p].domains) {
        sentences[w][p].push_back(
            reference->sample_message(kWaves[w][p].sender, d));
      }
    }
  }
  ParallelDispatcher ref_dispatcher(*reference);
  const auto ref_served =
      drive(ref_dispatcher, sentences, &reference->simulator());

  const std::vector<std::pair<std::size_t, std::size_t>> variants = {
      {1, 0}, {2, 0}, {2, 2}, {3, 2}};  // (shards, threads per shard)
  for (const auto& [num_shards, threads] : variants) {
    SCOPED_TRACE("K=" + std::to_string(num_shards) +
                 " threads=" + std::to_string(threads));
    auto sharded =
        ShardedEdgeServing::build(sharded_config(2027, threads), num_shards);
    ASSERT_EQ(sharded->num_shards(), num_shards);
    for (const auto& [name, edge] : users) {
      sharded->register_user(name, edge, nullptr);
    }
    ParallelDispatcher dispatcher(*sharded);
    const auto served = drive(dispatcher, sentences, nullptr);

    // Every message delivered exactly once, byte-identical to the
    // reference. Latency is part of the contract only at K = 1.
    ASSERT_EQ(served.size(), ref_served.size());
    for (std::size_t w = 0; w < served.size(); ++w) {
      ASSERT_EQ(served[w].size(), ref_served[w].size());
      for (std::size_t p = 0; p < served[w].size(); ++p) {
        ASSERT_EQ(served[w][p].size(), ref_served[w][p].size());
        for (std::size_t i = 0; i < served[w][p].size(); ++i) {
          EXPECT_EQ(served[w][p][i].completions, 1);
          expect_data_plane_equal(
              ref_served[w][p][i].report, served[w][p][i].report,
              /*compare_latency=*/num_shards == 1,
              "wave " + std::to_string(w) + " pair " + std::to_string(p) +
                  " message " + std::to_string(i));
        }
      }
    }

    // The merged stats ARE the single-system view (latency never enters
    // SystemStats, so this holds for every K).
    expect_stats_equal(reference->stats(), sharded->stats());
    EXPECT_EQ(sharded->messages_dispatched(), reference->stats().messages);

    // Serving state lives only on the owning shard and matches the
    // reference slot-for-slot: buffer bookkeeping, versions, weights.
    for (const std::string sender : {"a", "c", "d"}) {
      SemanticEdgeSystem& owner = sharded->owning_shard(sender);
      for (std::size_t domain = 0; domain < 2; ++domain) {
        for (std::size_t edge = 0; edge < 2; ++edge) {
          UserModelSlot* ref_slot =
              reference->edge_state(edge).find_slot(sender, domain);
          UserModelSlot* got_slot =
              owner.edge_state(edge).find_slot(sender, domain);
          ASSERT_EQ(ref_slot == nullptr, got_slot == nullptr);
          if (ref_slot == nullptr) continue;
          SCOPED_TRACE("slot " + sender + "/" + std::to_string(domain) +
                       " edge " + std::to_string(edge));
          EXPECT_EQ(ref_slot->send_version, got_slot->send_version);
          EXPECT_EQ(ref_slot->owns_model, got_slot->owns_model);
          if (ref_slot->buffer != nullptr) {
            ASSERT_NE(got_slot->buffer, nullptr);
            EXPECT_EQ(ref_slot->buffer->total_added(),
                      got_slot->buffer->total_added());
            EXPECT_EQ(ref_slot->buffer->adds_until_ready(),
                      got_slot->buffer->adds_until_ready());
            EXPECT_EQ(ref_slot->buffer->mean_mismatch(),
                      got_slot->buffer->mean_mismatch());
          }
          nn::ParameterSet ref_params = ref_slot->model->parameters();
          nn::ParameterSet got_params = got_slot->model->parameters();
          EXPECT_TRUE(ref_params.values_equal(got_params));
        }
      }
      // Non-owning shards hold the user's directory entry but never any
      // serving state (the ownership rule's other half).
      for (std::size_t s = 0; s < sharded->num_shards(); ++s) {
        if (s == sharded->shard_of(sender)) continue;
        for (std::size_t domain = 0; domain < 2; ++domain) {
          for (std::size_t edge = 0; edge < 2; ++edge) {
            EXPECT_EQ(
                sharded->shard(s).edge_state(edge).find_slot(sender, domain),
                nullptr);
          }
        }
      }
    }

    // Mutable serving state is conserved across the deployment: same slot
    // count, same materialized models, same fine-tuned bytes as the
    // reference — sharding relocates state, it does not duplicate it.
    const MemoryFootprint ref_fp = reference->memory_footprint();
    const MemoryFootprint fp = sharded->memory_footprint();
    EXPECT_EQ(fp.slots, ref_fp.slots);
    EXPECT_EQ(fp.materialized_models, ref_fp.materialized_models);
    EXPECT_EQ(fp.user_model_bytes, ref_fp.user_model_bytes);
    EXPECT_EQ(fp.buffer_bytes, ref_fp.buffer_bytes);
    // Directory (profiles) and fixed costs replicate per shard.
    EXPECT_EQ(fp.users, ref_fp.users * num_shards);
    EXPECT_EQ(fp.general_model_bytes, ref_fp.general_model_bytes * num_shards);
  }
}

TEST(ShardedServing, MemoryAuditPerUserCostIsBytesPlusDeltas) {
  unsetenv("SEMCACHE_THREADS");
  SystemConfig config = sharded_config(7, 0);
  config.buffer_trigger = 1000;  // never train: the frozen-general baseline
  config.buffer_capacity = 8;
  config.devices_per_edge = 16;
  auto system = SemanticEdgeSystem::build(config);

  const MemoryFootprint before = system->memory_footprint();
  EXPECT_EQ(before.users, 0u);
  EXPECT_EQ(before.user_model_bytes, 0u);
  // The fixed serving-replica pool: one replica per domain per worker lane
  // (threads = 0 → one lane), NOT one clone per user.
  EXPECT_EQ(before.serving_replica_bytes, before.general_model_bytes);

  const std::size_t num_users = 16;
  for (std::size_t u = 0; u < num_users; ++u) {
    system->register_user("u" + std::to_string(u), u % 2, nullptr);
  }
  // Every user sends: slots get established on sender and receiver edges,
  // transactions buffer, but nobody fine-tunes (trigger unreachable).
  std::size_t messages = 0;
  for (std::size_t u = 0; u < num_users; ++u) {
    const std::string sender = "u" + std::to_string(u);
    const std::string receiver = "u" + std::to_string((u + 1) % num_users);
    for (int i = 0; i < 3; ++i) {
      text::Sentence msg = system->sample_message(sender, 0);
      msg.domain = 0;
      system->transmit(sender, receiver, msg);
      ++messages;
    }
  }
  const MemoryFootprint active = system->memory_footprint();
  EXPECT_EQ(active.users, num_users);
  EXPECT_GT(active.slots, 0u);
  EXPECT_GT(active.buffer_bytes, 0u);
  // THE audit: active users cost profiles + slots + buffered deltas —
  // zero model clones.
  EXPECT_EQ(active.materialized_models, 0u);
  EXPECT_EQ(active.user_model_bytes, 0u);
  // Fixed costs did not move with population.
  EXPECT_EQ(active.general_model_bytes, before.general_model_bytes);
  EXPECT_EQ(active.serving_replica_bytes, before.serving_replica_bytes);
  // And the per-user variable cost is a small fraction of one model.
  const std::size_t per_user =
      (active.profile_bytes + active.slot_bytes + active.buffer_bytes) /
      num_users;
  EXPECT_LT(per_user, system->general_model(0).byte_size() / 4);

  // Copy-on-write fires exactly at the first weight write: a cross-edge
  // fine-tune materializes the sender-side model, and the shipped sync
  // materializes the receiver-side replica — 2 models, not 2 per user.
  SystemConfig train_cfg = sharded_config(7, 0);
  train_cfg.buffer_trigger = 3;
  train_cfg.oracle_selection = true;  // all 3 adds hit the (s, 0) buffer
  auto trained = SemanticEdgeSystem::build(train_cfg);
  trained->register_user("s", 0, nullptr);
  trained->register_user("r", 1, nullptr);
  for (int i = 0; i < 3; ++i) {
    text::Sentence msg = trained->sample_message("s", 0);
    msg.domain = 0;
    trained->transmit("s", "r", msg);
  }
  const MemoryFootprint tuned = trained->memory_footprint();
  EXPECT_EQ(tuned.materialized_models, 2u);
  EXPECT_EQ(tuned.user_model_bytes,
            2 * trained->general_model(0).byte_size());
  EXPECT_TRUE(trained->replicas_in_sync("s", 0, 0, 1));
}

TEST(ShardedServing, EnvShardCountAndValidation) {
  unsetenv("SEMCACHE_THREADS");
  setenv("SEMCACHE_SHARDS", "2", 1);
  auto sharded = ShardedEdgeServing::build(sharded_config(11, 0));
  unsetenv("SEMCACHE_SHARDS");
  EXPECT_EQ(sharded->num_shards(), 2u);
  sharded->register_user("a", 0, nullptr);
  // Every shard knows the user (replicated directory)...
  for (std::size_t s = 0; s < 2; ++s) {
    EXPECT_EQ(sharded->shard(s).user("a").name, "a");
  }
  // ...and the front door rejects unknown pairs at enqueue, keeping the
  // queue servable (the single-system dispatcher contract, inherited).
  ParallelDispatcher dispatcher(*sharded);
  dispatcher.enqueue("a", "a", {sharded->sample_message("a", 0)});
  EXPECT_THROW(
      dispatcher.enqueue("ghost", "a", {sharded->sample_message("a", 0)}),
      semcache::Error);
  EXPECT_EQ(dispatcher.queued_pairs(), 1u);
  std::size_t delivered = 0;
  EXPECT_EQ(dispatcher.flush([&delivered](std::size_t, std::size_t,
                                          TransmitReport) { ++delivered; }),
            1u);
  EXPECT_EQ(delivered, 1u);
  EXPECT_EQ(sharded->stats().messages, 1u);
}

}  // namespace
}  // namespace semcache::core
