// Unit tests for semcache::fl — transaction buffers, delta compression
// round-trips and error bounds, sync messages, replica consistency, and
// version tracking.
#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"
#include "fl/buffer.hpp"
#include "fl/compressor.hpp"
#include "fl/sync.hpp"
#include "nn/layers.hpp"

namespace semcache::fl {
namespace {

semantic::Sample sample(int tag) {
  return {{tag, tag + 1}, {tag + 2, tag + 3}};
}

TEST(Buffer, TriggersAfterThreshold) {
  DomainBuffer buf(3, 10);
  EXPECT_FALSE(buf.ready());
  buf.add(sample(0), 1.0);
  buf.add(sample(1), 1.0);
  EXPECT_FALSE(buf.ready());
  buf.add(sample(2), 1.0);
  EXPECT_TRUE(buf.ready());
  EXPECT_EQ(buf.size(), 3u);
}

TEST(Buffer, ConsumeReArmsButKeepsSamples) {
  DomainBuffer buf(2, 10);
  buf.add(sample(0), 1.0);
  buf.add(sample(1), 1.0);
  EXPECT_TRUE(buf.ready());
  buf.consume();
  EXPECT_FALSE(buf.ready());
  EXPECT_EQ(buf.size(), 2u);  // samples retained as training data
  buf.add(sample(2), 1.0);
  buf.add(sample(3), 1.0);
  EXPECT_TRUE(buf.ready());
  EXPECT_EQ(buf.size(), 4u);
}

TEST(Buffer, RingCapacityDropsOldest) {
  DomainBuffer buf(1, 3);
  for (int i = 0; i < 5; ++i) buf.add(sample(i), 1.0);
  EXPECT_EQ(buf.size(), 3u);
  EXPECT_EQ(buf.samples()[0].surface[0], 2);  // 0 and 1 dropped
  EXPECT_EQ(buf.total_added(), 5u);
}

TEST(Buffer, MeanMismatch) {
  DomainBuffer buf(1, 10);
  buf.add(sample(0), 2.0);
  buf.add(sample(1), 4.0);
  EXPECT_DOUBLE_EQ(buf.mean_mismatch(), 3.0);
  buf.clear();
  EXPECT_DOUBLE_EQ(buf.mean_mismatch(), 0.0);
  EXPECT_EQ(buf.size(), 0u);
}

TEST(Buffer, ValidatesConfig) {
  EXPECT_THROW(DomainBuffer(0, 10), Error);
  EXPECT_THROW(DomainBuffer(5, 4), Error);
}

std::vector<float> random_delta(std::size_t n, Rng& rng, double scale = 0.1) {
  std::vector<float> d(n);
  for (auto& x : d) x = static_cast<float>(rng.gaussian(0.0, scale));
  return d;
}

TEST(Compressor, DenseFloat32IsLossless) {
  Rng rng(1);
  const auto delta = random_delta(200, rng);
  DeltaCompressor comp({1.0, 32});
  EXPECT_EQ(comp.decompress(comp.compress(delta)), delta);
}

TEST(Compressor, TopKKeepsLargestMagnitudes) {
  std::vector<float> delta = {0.01f, -5.0f, 0.02f, 3.0f, 0.0f, -0.5f};
  DeltaCompressor comp({2.0 / 6.0, 32});
  const auto out = comp.decompress(comp.compress(delta));
  EXPECT_FLOAT_EQ(out[1], -5.0f);
  EXPECT_FLOAT_EQ(out[3], 3.0f);
  for (const std::size_t zeroed : {0u, 2u, 4u, 5u}) {
    EXPECT_FLOAT_EQ(out[zeroed], 0.0f);
  }
}

TEST(Compressor, Int8QuantizationErrorBounded) {
  Rng rng(2);
  const auto delta = random_delta(500, rng);
  DeltaCompressor comp({1.0, 8});
  const auto out = comp.decompress(comp.compress(delta));
  float max_abs = 0.0f;
  for (const float d : delta) max_abs = std::max(max_abs, std::abs(d));
  const float step = max_abs / 127.0f;
  for (std::size_t i = 0; i < delta.size(); ++i) {
    EXPECT_NEAR(out[i], delta[i], step * 0.51f);
  }
}

TEST(Compressor, Int16TighterThanInt8) {
  Rng rng(3);
  const auto delta = random_delta(500, rng);
  auto err = [&](unsigned bits) {
    DeltaCompressor comp({1.0, bits});
    const auto out = comp.decompress(comp.compress(delta));
    double e = 0.0;
    for (std::size_t i = 0; i < delta.size(); ++i) {
      e += std::abs(static_cast<double>(out[i]) - delta[i]);
    }
    return e;
  };
  EXPECT_LT(err(16), err(8) / 10.0);
}

TEST(Compressor, WireSizeShrinksWithCompression) {
  Rng rng(4);
  const auto delta = random_delta(1000, rng);
  const auto dense32 = DeltaCompressor({1.0, 32}).compress(delta);
  const auto dense8 = DeltaCompressor({1.0, 8}).compress(delta);
  const auto sparse8 = DeltaCompressor({0.1, 8}).compress(delta);
  EXPECT_LT(dense8.byte_size(), dense32.byte_size() / 3);
  EXPECT_LT(sparse8.byte_size(), dense8.byte_size() / 2);
}

TEST(Compressor, SerializationRoundTrip) {
  Rng rng(5);
  const auto delta = random_delta(128, rng);
  for (const CompressionConfig cfg :
       {CompressionConfig{1.0, 32}, CompressionConfig{0.25, 8},
        CompressionConfig{0.5, 16}}) {
    DeltaCompressor comp(cfg);
    const CompressedDelta c = comp.compress(delta);
    ByteWriter w;
    c.serialize(w);
    ByteReader r(w.bytes());
    const CompressedDelta back = CompressedDelta::deserialize(r);
    EXPECT_EQ(comp.decompress(back), comp.decompress(c));
    EXPECT_EQ(w.size(), c.byte_size());
  }
}

TEST(Compressor, ValidatesConfig) {
  EXPECT_THROW(DeltaCompressor({0.0, 8}), Error);
  EXPECT_THROW(DeltaCompressor({1.5, 8}), Error);
  EXPECT_THROW(DeltaCompressor({0.5, 7}), Error);
}

TEST(Compressor, ZeroDeltaSafe) {
  std::vector<float> zeros(50, 0.0f);
  DeltaCompressor comp({0.2, 8});
  const auto out = comp.decompress(comp.compress(zeros));
  EXPECT_EQ(out, zeros);
}

TEST(SyncMessage, BytesRoundTrip) {
  Rng rng(6);
  const auto delta = random_delta(64, rng);
  ModelSynchronizer sync({0.5, 8});
  std::vector<float> before(64, 0.0f);
  const SyncMessage msg =
      sync.make_message(before, delta, "alice", 2, 7);
  const auto bytes = msg.to_bytes();
  EXPECT_EQ(bytes.size(), msg.byte_size());
  const SyncMessage back = SyncMessage::from_bytes(bytes);
  EXPECT_EQ(back.user, "alice");
  EXPECT_EQ(back.domain, 2u);
  EXPECT_EQ(back.version, 7u);
  EXPECT_EQ(sync.compressor().decompress(back.delta),
            sync.compressor().decompress(msg.delta));
}

TEST(Synchronizer, ReplicasStayBitIdenticalUnderLossyCompression) {
  // The core consistency contract (§II-C/D): both replicas apply the same
  // decompressed delta, so even int8 top-k compression cannot diverge them.
  Rng rng(7);
  nn::Linear sender_model(8, 8, rng, "dec");
  nn::Linear receiver_model(8, 8, rng, "dec");
  nn::ParameterSet sender(sender_model.parameters());
  nn::ParameterSet receiver(receiver_model.parameters());
  receiver.copy_values_from(sender);

  ModelSynchronizer sync({0.25, 8});
  std::uint64_t version = 0;
  for (int round = 0; round < 5; ++round) {
    // Simulate fine-tuning: a random delta on a scratch copy.
    const auto before = sender.flatten_values();
    auto after = before;
    for (auto& x : after) x += static_cast<float>(rng.gaussian(0.0, 0.05));
    const SyncMessage msg =
        sync.make_message(before, after, "u", 0, ++version);
    sync.apply(sender, msg);    // sender rolls ITS replica forward lossily
    sync.apply(receiver, msg);  // receiver does the same
    EXPECT_TRUE(sender.values_equal(receiver)) << "round " << round;
  }
}

TEST(Synchronizer, RawWeightsWouldDiverge) {
  // Negative control: adopting the raw fine-tuned weights at the sender
  // (instead of the lossy delta) breaks byte-identity.
  Rng rng(8);
  nn::Linear sender_model(6, 6, rng, "dec");
  nn::Linear receiver_model(6, 6, rng, "dec");
  nn::ParameterSet sender(sender_model.parameters());
  nn::ParameterSet receiver(receiver_model.parameters());
  receiver.copy_values_from(sender);

  ModelSynchronizer sync({0.25, 8});
  const auto before = sender.flatten_values();
  auto after = before;
  for (auto& x : after) x += static_cast<float>(rng.gaussian(0.0, 0.05));
  const SyncMessage msg = sync.make_message(before, after, "u", 0, 1);
  sender.unflatten_values(after);  // WRONG: raw weights
  sync.apply(receiver, msg);
  EXPECT_FALSE(sender.values_equal(receiver));
}

TEST(Synchronizer, CompressionResidualShrinksWithBits) {
  Rng rng(9);
  std::vector<float> before(300, 0.0f);
  auto after = before;
  for (auto& x : after) x += static_cast<float>(rng.gaussian(0.0, 0.1));
  const double res8 =
      ModelSynchronizer({1.0, 8}).compression_residual(before, after);
  const double res16 =
      ModelSynchronizer({1.0, 16}).compression_residual(before, after);
  const double res32 =
      ModelSynchronizer({1.0, 32}).compression_residual(before, after);
  EXPECT_LT(res16, res8);
  EXPECT_NEAR(res32, 0.0, 1e-12);
}

TEST(VersionVector, StrictMonotone) {
  VersionVector v;
  EXPECT_EQ(v.current(), 0u);
  EXPECT_TRUE(v.advance(1));
  EXPECT_FALSE(v.advance(1));  // replay
  EXPECT_FALSE(v.advance(3));  // gap
  EXPECT_TRUE(v.advance(2));
  EXPECT_EQ(v.current(), 2u);
  EXPECT_EQ(v.rejected(), 2u);
}

class TopKSweep : public ::testing::TestWithParam<double> {};

TEST_P(TopKSweep, SparsityMatchesFraction) {
  Rng rng(10);
  const auto delta = random_delta(1000, rng);
  DeltaCompressor comp({GetParam(), 32});
  const CompressedDelta c = comp.compress(delta);
  const auto expected =
      static_cast<std::size_t>(std::llround(GetParam() * 1000));
  EXPECT_EQ(c.indices.size(), expected);
  // Every kept value is >= every dropped value in magnitude.
  const auto out = comp.decompress(c);
  float min_kept = 1e9f;
  float max_dropped = 0.0f;
  for (std::size_t i = 0; i < delta.size(); ++i) {
    if (out[i] != 0.0f) {
      min_kept = std::min(min_kept, std::abs(delta[i]));
    } else {
      max_dropped = std::max(max_dropped, std::abs(delta[i]));
    }
  }
  EXPECT_GE(min_kept + 1e-9f, max_dropped);
}

INSTANTIATE_TEST_SUITE_P(Sweep, TopKSweep,
                         ::testing::Values(0.01, 0.1, 0.25, 0.5));

}  // namespace
}  // namespace semcache::fl
