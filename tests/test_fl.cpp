// Unit tests for semcache::fl — transaction buffers, delta compression
// round-trips and error bounds, sync messages, replica consistency, and
// version tracking.
#include <gtest/gtest.h>

#include <cmath>
#include <span>

#include "common/check.hpp"
#include "fl/buffer.hpp"
#include "fl/compressor.hpp"
#include "fl/sync.hpp"
#include "nn/layers.hpp"

namespace semcache::fl {
namespace {

semantic::Sample sample(int tag) {
  return {{tag, tag + 1}, {tag + 2, tag + 3}};
}

TEST(Buffer, TriggersAfterThreshold) {
  DomainBuffer buf(3, 10);
  EXPECT_FALSE(buf.ready());
  buf.add(sample(0), 1.0);
  buf.add(sample(1), 1.0);
  EXPECT_FALSE(buf.ready());
  buf.add(sample(2), 1.0);
  EXPECT_TRUE(buf.ready());
  EXPECT_EQ(buf.size(), 3u);
}

TEST(Buffer, ConsumeReArmsButKeepsSamples) {
  DomainBuffer buf(2, 10);
  buf.add(sample(0), 1.0);
  buf.add(sample(1), 1.0);
  EXPECT_TRUE(buf.ready());
  buf.consume();
  EXPECT_FALSE(buf.ready());
  EXPECT_EQ(buf.size(), 2u);  // samples retained as training data
  buf.add(sample(2), 1.0);
  buf.add(sample(3), 1.0);
  EXPECT_TRUE(buf.ready());
  EXPECT_EQ(buf.size(), 4u);
}

TEST(Buffer, RingCapacityDropsOldest) {
  DomainBuffer buf(1, 3);
  for (int i = 0; i < 5; ++i) buf.add(sample(i), 1.0);
  EXPECT_EQ(buf.size(), 3u);
  EXPECT_EQ(buf.samples()[0].surface[0], 2);  // 0 and 1 dropped
  EXPECT_EQ(buf.total_added(), 5u);
}

TEST(Buffer, MeanMismatch) {
  DomainBuffer buf(1, 10);
  buf.add(sample(0), 2.0);
  buf.add(sample(1), 4.0);
  EXPECT_DOUBLE_EQ(buf.mean_mismatch(), 3.0);
  buf.clear();
  EXPECT_DOUBLE_EQ(buf.mean_mismatch(), 0.0);
  EXPECT_EQ(buf.size(), 0u);
}

TEST(Buffer, ValidatesConfig) {
  EXPECT_THROW(DomainBuffer(0, 10), Error);
  EXPECT_THROW(DomainBuffer(5, 4), Error);
}

std::vector<float> random_delta(std::size_t n, Rng& rng, double scale = 0.1) {
  std::vector<float> d(n);
  for (auto& x : d) x = static_cast<float>(rng.gaussian(0.0, scale));
  return d;
}

TEST(Compressor, DenseFloat32IsLossless) {
  Rng rng(1);
  const auto delta = random_delta(200, rng);
  DeltaCompressor comp({1.0, 32});
  EXPECT_EQ(comp.decompress(comp.compress(delta)), delta);
}

TEST(Compressor, TopKKeepsLargestMagnitudes) {
  std::vector<float> delta = {0.01f, -5.0f, 0.02f, 3.0f, 0.0f, -0.5f};
  DeltaCompressor comp({2.0 / 6.0, 32});
  const auto out = comp.decompress(comp.compress(delta));
  EXPECT_FLOAT_EQ(out[1], -5.0f);
  EXPECT_FLOAT_EQ(out[3], 3.0f);
  for (const std::size_t zeroed : {0u, 2u, 4u, 5u}) {
    EXPECT_FLOAT_EQ(out[zeroed], 0.0f);
  }
}

TEST(Compressor, Int8QuantizationErrorBounded) {
  Rng rng(2);
  const auto delta = random_delta(500, rng);
  DeltaCompressor comp({1.0, 8});
  const auto out = comp.decompress(comp.compress(delta));
  float max_abs = 0.0f;
  for (const float d : delta) max_abs = std::max(max_abs, std::abs(d));
  const float step = max_abs / 127.0f;
  for (std::size_t i = 0; i < delta.size(); ++i) {
    EXPECT_NEAR(out[i], delta[i], step * 0.51f);
  }
}

TEST(Compressor, Int16TighterThanInt8) {
  Rng rng(3);
  const auto delta = random_delta(500, rng);
  auto err = [&](unsigned bits) {
    DeltaCompressor comp({1.0, bits});
    const auto out = comp.decompress(comp.compress(delta));
    double e = 0.0;
    for (std::size_t i = 0; i < delta.size(); ++i) {
      e += std::abs(static_cast<double>(out[i]) - delta[i]);
    }
    return e;
  };
  EXPECT_LT(err(16), err(8) / 10.0);
}

TEST(Compressor, WireSizeShrinksWithCompression) {
  Rng rng(4);
  const auto delta = random_delta(1000, rng);
  const auto dense32 = DeltaCompressor({1.0, 32}).compress(delta);
  const auto dense8 = DeltaCompressor({1.0, 8}).compress(delta);
  const auto sparse8 = DeltaCompressor({0.1, 8}).compress(delta);
  EXPECT_LT(dense8.byte_size(), dense32.byte_size() / 3);
  EXPECT_LT(sparse8.byte_size(), dense8.byte_size() / 2);
}

TEST(Compressor, SerializationRoundTrip) {
  Rng rng(5);
  const auto delta = random_delta(128, rng);
  for (const CompressionConfig cfg :
       {CompressionConfig{1.0, 32}, CompressionConfig{0.25, 8},
        CompressionConfig{0.5, 16}}) {
    DeltaCompressor comp(cfg);
    const CompressedDelta c = comp.compress(delta);
    ByteWriter w;
    c.serialize(w);
    ByteReader r(w.bytes());
    const CompressedDelta back = CompressedDelta::deserialize(r);
    EXPECT_EQ(comp.decompress(back), comp.decompress(c));
    EXPECT_EQ(w.size(), c.byte_size());
  }
}

TEST(Compressor, ValidatesConfig) {
  EXPECT_THROW(DeltaCompressor({0.0, 8}), Error);
  EXPECT_THROW(DeltaCompressor({1.5, 8}), Error);
  EXPECT_THROW(DeltaCompressor({0.5, 7}), Error);
}

TEST(Compressor, ZeroDeltaSafe) {
  std::vector<float> zeros(50, 0.0f);
  DeltaCompressor comp({0.2, 8});
  const auto out = comp.decompress(comp.compress(zeros));
  EXPECT_EQ(out, zeros);
}

TEST(SyncMessage, BytesRoundTrip) {
  Rng rng(6);
  const auto delta = random_delta(64, rng);
  ModelSynchronizer sync({0.5, 8});
  std::vector<float> before(64, 0.0f);
  const SyncMessage msg =
      sync.make_message(before, delta, "alice", 2, 7);
  const auto bytes = msg.to_bytes();
  EXPECT_EQ(bytes.size(), msg.byte_size());
  const SyncMessage back = SyncMessage::from_bytes(bytes);
  EXPECT_EQ(back.user, "alice");
  EXPECT_EQ(back.domain, 2u);
  EXPECT_EQ(back.version, 7u);
  EXPECT_EQ(sync.compressor().decompress(back.delta),
            sync.compressor().decompress(msg.delta));
}

TEST(SyncMessage, WireRoundTripCarriesCrc) {
  Rng rng(6);
  const auto delta = random_delta(64, rng);
  ModelSynchronizer sync({0.5, 8});
  std::vector<float> before(64, 0.0f);
  const SyncMessage msg = sync.make_message(before, delta, "alice", 2, 7);
  const auto wire = msg.to_wire();
  EXPECT_EQ(wire.size(), msg.wire_byte_size());
  EXPECT_EQ(wire.size(), msg.byte_size() + 4);
  const SyncMessage back = SyncMessage::from_wire(wire);
  EXPECT_EQ(back.user, "alice");
  EXPECT_EQ(back.version, 7u);
  EXPECT_EQ(sync.compressor().decompress(back.delta),
            sync.compressor().decompress(msg.delta));
}

TEST(SyncMessage, WireCrcCatchesEverySingleByteFlip) {
  Rng rng(8);
  const auto delta = random_delta(32, rng);
  ModelSynchronizer sync({0.5, 8});
  std::vector<float> before(32, 0.0f);
  const SyncMessage msg = sync.make_message(before, delta, "bob", 1, 3);
  const auto wire = msg.to_wire();
  for (std::size_t pos = 0; pos < wire.size(); ++pos) {
    auto corrupted = wire;
    corrupted[pos] ^= 0x41;
    EXPECT_THROW((void)SyncMessage::from_wire(corrupted), Error)
        << "flip at byte " << pos << " was not detected";
  }
}

TEST(SyncMessage, TruncatedBytesThrowCleanly) {
  // Hardened deserialization: EVERY strict prefix of a valid encoding
  // must throw semcache::Error — never read out of bounds or allocate
  // from a garbage length (ASan/UBSan-clean by construction).
  Rng rng(9);
  const auto delta = random_delta(48, rng);
  ModelSynchronizer sync({0.25, 8});
  std::vector<float> before(48, 0.0f);
  const SyncMessage msg = sync.make_message(before, delta, "carol", 0, 11);
  const auto bytes = msg.to_bytes();
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    const std::span<const std::uint8_t> prefix(bytes.data(), len);
    EXPECT_THROW((void)SyncMessage::from_bytes(prefix), Error)
        << "prefix of length " << len << " did not throw";
  }
  // And random garbage: decode must either throw Error or (for the rare
  // accidentally-wellformed image) return — anything else is UB the
  // sanitizer jobs would flag.
  Rng fuzz(0xF022);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> garbage(static_cast<std::size_t>(
        fuzz.uniform_int(0, static_cast<std::int64_t>(bytes.size()) * 2)));
    for (auto& b : garbage) {
      b = static_cast<std::uint8_t>(fuzz.uniform_int(0, 255));
    }
    try {
      (void)SyncMessage::from_bytes(garbage);
    } catch (const Error&) {
    }
  }
}

TEST(CompressedDelta, GarbageCountsRejectedBeforeAllocation) {
  // A wire image claiming 2^32-ish elements in a tiny payload must be
  // rejected by the bounds checks, not attempted as an allocation.
  {
    ByteWriter w;
    w.write_u32(16);          // total_dims
    w.write_f32(1.0f);        // scale
    w.write_u8(8);            // bits
    w.write_u32(0xFFFFFFFF);  // index count >> remaining bytes
    ByteReader r(w.bytes());
    EXPECT_THROW((void)CompressedDelta::deserialize(r), Error);
  }
  {
    ByteWriter w;
    w.write_u32(16);
    w.write_f32(1.0f);
    w.write_u8(8);
    w.write_u32(0);           // no indices (dense)
    w.write_u32(0xFFFFFFFF);  // value count >> remaining bytes
    ByteReader r(w.bytes());
    EXPECT_THROW((void)CompressedDelta::deserialize(r), Error);
  }
  {
    // Indices out of range for total_dims.
    ByteWriter w;
    w.write_u32(4);  // total_dims
    w.write_f32(1.0f);
    w.write_u8(8);
    w.write_u32(1);
    w.write_u8(9);  // varint index 9 >= total_dims 4
    w.write_u32(1);
    w.write_u8(1);
    ByteReader r(w.bytes());
    EXPECT_THROW((void)CompressedDelta::deserialize(r), Error);
  }
  {
    // Sparse value/index count mismatch (would misindex in decompress).
    ByteWriter w;
    w.write_u32(16);
    w.write_f32(1.0f);
    w.write_u8(8);
    w.write_u32(2);
    w.write_u8(1);
    w.write_u8(1);
    w.write_u32(1);  // 1 value for 2 indices
    w.write_u8(5);
    ByteReader r(w.bytes());
    EXPECT_THROW((void)CompressedDelta::deserialize(r), Error);
  }
}

TEST(Synchronizer, ReplicasStayBitIdenticalUnderLossyCompression) {
  // The core consistency contract (§II-C/D): both replicas apply the same
  // decompressed delta, so even int8 top-k compression cannot diverge them.
  Rng rng(7);
  nn::Linear sender_model(8, 8, rng, "dec");
  nn::Linear receiver_model(8, 8, rng, "dec");
  nn::ParameterSet sender(sender_model.parameters());
  nn::ParameterSet receiver(receiver_model.parameters());
  receiver.copy_values_from(sender);

  ModelSynchronizer sync({0.25, 8});
  std::uint64_t version = 0;
  for (int round = 0; round < 5; ++round) {
    // Simulate fine-tuning: a random delta on a scratch copy.
    const auto before = sender.flatten_values();
    auto after = before;
    for (auto& x : after) x += static_cast<float>(rng.gaussian(0.0, 0.05));
    const SyncMessage msg =
        sync.make_message(before, after, "u", 0, ++version);
    sync.apply(sender, msg);    // sender rolls ITS replica forward lossily
    sync.apply(receiver, msg);  // receiver does the same
    EXPECT_TRUE(sender.values_equal(receiver)) << "round " << round;
  }
}

TEST(Synchronizer, RawWeightsWouldDiverge) {
  // Negative control: adopting the raw fine-tuned weights at the sender
  // (instead of the lossy delta) breaks byte-identity.
  Rng rng(8);
  nn::Linear sender_model(6, 6, rng, "dec");
  nn::Linear receiver_model(6, 6, rng, "dec");
  nn::ParameterSet sender(sender_model.parameters());
  nn::ParameterSet receiver(receiver_model.parameters());
  receiver.copy_values_from(sender);

  ModelSynchronizer sync({0.25, 8});
  const auto before = sender.flatten_values();
  auto after = before;
  for (auto& x : after) x += static_cast<float>(rng.gaussian(0.0, 0.05));
  const SyncMessage msg = sync.make_message(before, after, "u", 0, 1);
  sender.unflatten_values(after);  // WRONG: raw weights
  sync.apply(receiver, msg);
  EXPECT_FALSE(sender.values_equal(receiver));
}

TEST(Synchronizer, CompressionResidualShrinksWithBits) {
  Rng rng(9);
  std::vector<float> before(300, 0.0f);
  auto after = before;
  for (auto& x : after) x += static_cast<float>(rng.gaussian(0.0, 0.1));
  const double res8 =
      ModelSynchronizer({1.0, 8}).compression_residual(before, after);
  const double res16 =
      ModelSynchronizer({1.0, 16}).compression_residual(before, after);
  const double res32 =
      ModelSynchronizer({1.0, 32}).compression_residual(before, after);
  EXPECT_LT(res16, res8);
  EXPECT_NEAR(res32, 0.0, 1e-12);
}

TEST(VersionVector, StrictMonotone) {
  VersionVector v;
  EXPECT_EQ(v.current(), 0u);
  EXPECT_TRUE(v.advance(1));
  EXPECT_FALSE(v.advance(1));  // replay
  EXPECT_FALSE(v.advance(3));  // gap
  EXPECT_TRUE(v.advance(2));
  EXPECT_EQ(v.current(), 2u);
  EXPECT_EQ(v.rejected(), 2u);
}

class TopKSweep : public ::testing::TestWithParam<double> {};

TEST_P(TopKSweep, SparsityMatchesFraction) {
  Rng rng(10);
  const auto delta = random_delta(1000, rng);
  DeltaCompressor comp({GetParam(), 32});
  const CompressedDelta c = comp.compress(delta);
  const auto expected =
      static_cast<std::size_t>(std::llround(GetParam() * 1000));
  EXPECT_EQ(c.indices.size(), expected);
  // Every kept value is >= every dropped value in magnitude.
  const auto out = comp.decompress(c);
  float min_kept = 1e9f;
  float max_dropped = 0.0f;
  for (std::size_t i = 0; i < delta.size(); ++i) {
    if (out[i] != 0.0f) {
      min_kept = std::min(min_kept, std::abs(delta[i]));
    } else {
      max_dropped = std::max(max_dropped, std::abs(delta[i]));
    }
  }
  EXPECT_GE(min_kept + 1e-9f, max_dropped);
}

INSTANTIATE_TEST_SUITE_P(Sweep, TopKSweep,
                         ::testing::Values(0.01, 0.1, 0.25, 0.5));

}  // namespace
}  // namespace semcache::fl
