// Unit tests for semcache::text — vocabulary, Zipf sampling, world
// generation invariants (polysemy by construction), idiolects, tokenizer.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "common/check.hpp"
#include "text/corpus.hpp"
#include "text/idiolect.hpp"
#include "text/tokenizer.hpp"
#include "text/vocab.hpp"
#include "text/zipf.hpp"

namespace semcache::text {
namespace {

TEST(Vocab, ReservedTokens) {
  Vocab v;
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v.id("<pad>"), Vocab::kPad);
  EXPECT_EQ(v.id("<unk>"), Vocab::kUnk);
}

TEST(Vocab, AddIsIdempotent) {
  Vocab v;
  const auto a = v.add("word");
  const auto b = v.add("word");
  EXPECT_EQ(a, b);
  EXPECT_EQ(v.size(), 3u);
}

TEST(Vocab, UnknownMapsToUnk) {
  Vocab v;
  EXPECT_EQ(v.id("missing"), Vocab::kUnk);
  EXPECT_FALSE(v.contains("missing"));
}

TEST(Vocab, WordLookupAndBounds) {
  Vocab v;
  const auto id = v.add("hello");
  EXPECT_EQ(v.word(id), "hello");
  EXPECT_THROW(v.word(99), Error);
  EXPECT_THROW(v.word(-1), Error);
}

TEST(Zipf, PmfSumsToOne) {
  ZipfSampler z(20, 1.0);
  double total = 0.0;
  for (std::size_t r = 0; r < 20; ++r) total += z.pmf(r);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Zipf, MonotoneDecreasing) {
  ZipfSampler z(10, 1.2);
  for (std::size_t r = 1; r < 10; ++r) EXPECT_LT(z.pmf(r), z.pmf(r - 1));
}

TEST(Zipf, AlphaZeroIsUniform) {
  ZipfSampler z(5, 0.0);
  for (std::size_t r = 0; r < 5; ++r) EXPECT_NEAR(z.pmf(r), 0.2, 1e-12);
}

TEST(Zipf, DeepRankPmfIsExactNotACdfResidual) {
  // Regression: pmf used to be cdf_[r] - cdf_[r-1] with cdf_.back()
  // clamped to 1.0, which silently dumped the whole accumulated rounding
  // error of a long normalization into pmf(n-1) (and lost precision to
  // cancellation at every deep rank). pmf now comes from the raw
  // weights, so even at n = 50000 the mass function sums to one, stays
  // monotone through the very last rank, and the tail matches the
  // analytic weight/total directly.
  const std::size_t n = 50000;
  const double alpha = 1.0;
  ZipfSampler z(n, alpha);
  double total = 0.0;
  for (std::size_t r = 0; r < n; ++r) total += z.pmf(r);
  EXPECT_NEAR(total, 1.0, 1e-9);
  for (std::size_t r = 1; r < n; ++r) {
    ASSERT_LE(z.pmf(r), z.pmf(r - 1)) << "rank " << r;
  }
  double norm = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    norm += 1.0 / std::pow(static_cast<double>(r + 1), alpha);
  }
  const double expected_last = (1.0 / static_cast<double>(n)) / norm;
  EXPECT_NEAR(z.pmf(n - 1), expected_last, expected_last * 1e-9);
}

TEST(Zipf, EmpiricalMatchesPmf) {
  ZipfSampler z(8, 1.0);
  Rng rng(3);
  std::vector<int> counts(8, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[z.sample(rng)];
  for (std::size_t r = 0; r < 8; ++r) {
    EXPECT_NEAR(counts[r] / static_cast<double>(n), z.pmf(r), 0.01);
  }
}

class WorldTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(42);
    WorldConfig cfg;
    cfg.num_domains = 4;
    cfg.concepts_per_domain = 20;
    cfg.num_polysemous = 10;
    world_ = new World(World::generate(cfg, rng));
  }
  static void TearDownTestSuite() {
    delete world_;
    world_ = nullptr;
  }
  static World* world_;
};

World* WorldTest::world_ = nullptr;

TEST_F(WorldTest, DomainNamesResolved) {
  EXPECT_EQ(world_->domain_name(0), "it");
  EXPECT_EQ(world_->domain_name(1), "medical");
  EXPECT_THROW(world_->domain_name(4), Error);
}

TEST_F(WorldTest, MeaningCountMatchesStructure) {
  // function words + polysemous senses + domain concepts.
  std::size_t poly_senses = 0;
  for (std::size_t d = 0; d < 4; ++d) {
    poly_senses += world_->polysemous_meanings(d).size();
  }
  EXPECT_EQ(world_->meaning_count(),
            16u + poly_senses + 4u * 20u);
  EXPECT_GE(poly_senses, 2u * 10u);  // every polysemous word has >= 2 senses
}

TEST_F(WorldTest, PolysemousSurfacesShared) {
  // Each polysemous meaning's surface maps to >= 2 distinct meanings.
  std::map<std::int32_t, std::set<std::int32_t>> by_surface;
  for (std::size_t d = 0; d < 4; ++d) {
    for (const auto mid : world_->polysemous_meanings(d)) {
      by_surface[world_->meaning(mid).surface].insert(mid);
    }
  }
  EXPECT_FALSE(by_surface.empty());
  for (const auto& [surface, senses] : by_surface) {
    EXPECT_GE(senses.size(), 2u) << "surface "
                                 << world_->surface_vocab().word(surface);
  }
}

TEST_F(WorldTest, DomainConceptSurfacesUnique) {
  // Domain-exclusive concepts never share surfaces with anything else.
  std::map<std::int32_t, int> surface_uses;
  for (std::size_t m = 0; m < world_->meaning_count(); ++m) {
    ++surface_uses[world_->meaning(static_cast<std::int32_t>(m)).surface];
  }
  for (std::size_t d = 0; d < 4; ++d) {
    for (const auto mid : world_->domain_meanings(d)) {
      EXPECT_EQ(surface_uses[world_->meaning(mid).surface], 1);
    }
  }
}

TEST_F(WorldTest, SampledSentenceConsistent) {
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    const Sentence s = world_->sample_sentence(2, rng);
    EXPECT_EQ(s.domain, 2u);
    EXPECT_EQ(s.surface.size(), world_->config().sentence_length);
    ASSERT_EQ(s.meanings.size(), s.surface.size());
    for (std::size_t p = 0; p < s.meanings.size(); ++p) {
      const Meaning& m = world_->meaning(s.meanings[p]);
      // Surface must be the canonical utterance of the meaning.
      EXPECT_EQ(m.surface, s.surface[p]);
      // Meaning must belong to the sentence's domain or be shared.
      EXPECT_TRUE(m.domain == 2u || m.domain == World::kSharedDomain);
    }
  }
}

TEST_F(WorldTest, SampleRejectsBadDomain) {
  Rng rng(1);
  EXPECT_THROW(world_->sample_sentence(9, rng), Error);
}

TEST_F(WorldTest, GenerationDeterministic) {
  Rng a(42), b(42);
  WorldConfig cfg;
  cfg.num_domains = 2;
  cfg.concepts_per_domain = 8;
  World w1 = World::generate(cfg, a);
  World w2 = World::generate(cfg, b);
  EXPECT_EQ(w1.surface_count(), w2.surface_count());
  EXPECT_EQ(w1.meaning_count(), w2.meaning_count());
  Rng s1(5), s2(5);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(w1.sample_sentence(0, s1).surface,
              w2.sample_sentence(0, s2).surface);
  }
}

TEST_F(WorldTest, RenderersRoundTripWords) {
  Rng rng(9);
  const Sentence s = world_->sample_sentence(1, rng);
  const std::string text = world_->surface_to_string(s.surface);
  const auto ids = tokenize(world_->surface_vocab(), text);
  EXPECT_EQ(ids, s.surface);
}

TEST(WorldConfigValidation, RejectsBadConfigs) {
  Rng rng(1);
  WorldConfig no_domains;
  no_domains.num_domains = 0;
  EXPECT_THROW(World::generate(no_domains, rng), Error);
  WorldConfig bad_probs;
  bad_probs.function_word_prob = 0.7;
  bad_probs.polysemous_prob = 0.4;
  EXPECT_THROW(World::generate(bad_probs, rng), Error);
}

TEST(World, SlangPoolExhaustion) {
  Rng rng(2);
  WorldConfig cfg;
  cfg.num_domains = 1;
  cfg.concepts_per_domain = 4;
  cfg.slang_pool_size = 2;
  World w = World::generate(cfg, rng);
  EXPECT_EQ(w.slang_remaining(), 2u);
  w.take_slang_surface();
  w.take_slang_surface();
  EXPECT_THROW(w.take_slang_surface(), Error);
}

TEST(Idiolect, AppliesOnlyMappedMeanings) {
  Rng rng(11);
  WorldConfig cfg;
  cfg.num_domains = 2;
  cfg.concepts_per_domain = 20;
  World w = World::generate(cfg, rng);
  IdiolectConfig icfg;
  icfg.substitution_rate = 0.5;
  Idiolect idio = Idiolect::generate(w, icfg, rng);
  EXPECT_GT(idio.size(), 0u);

  Rng srng(3);
  for (int i = 0; i < 30; ++i) {
    Sentence s = w.sample_sentence(0, srng);
    const Sentence original = s;
    idio.apply(s);
    EXPECT_EQ(s.meanings, original.meanings);  // meaning unchanged
    for (std::size_t p = 0; p < s.surface.size(); ++p) {
      if (idio.remaps(s.meanings[p])) {
        EXPECT_NE(s.surface[p], original.surface[p]);
      } else {
        EXPECT_EQ(s.surface[p], original.surface[p]);
      }
    }
  }
}

TEST(Idiolect, ZeroRateIsEmpty) {
  Rng rng(12);
  WorldConfig cfg;
  cfg.num_domains = 1;
  cfg.concepts_per_domain = 10;
  World w = World::generate(cfg, rng);
  IdiolectConfig icfg;
  icfg.substitution_rate = 0.0;
  const Idiolect idio = Idiolect::generate(w, icfg, rng);
  EXPECT_EQ(idio.size(), 0u);
}

TEST(Idiolect, DeterministicForSameRng) {
  Rng rng1(13), rng2(13);
  WorldConfig cfg;
  cfg.num_domains = 2;
  cfg.concepts_per_domain = 15;
  World w1 = World::generate(cfg, rng1);
  World w2 = World::generate(cfg, rng2);
  IdiolectConfig icfg;
  Rng i1(5), i2(5);
  Idiolect a = Idiolect::generate(w1, icfg, i1);
  Idiolect b = Idiolect::generate(w2, icfg, i2);
  EXPECT_EQ(a.size(), b.size());
}

TEST(Tokenizer, SplitsAndLowercases) {
  const auto words = split_words("Hello, World!  foo_bar");
  EXPECT_EQ(words,
            (std::vector<std::string>{"hello", "world", "foo_bar"}));
}

TEST(Tokenizer, EmptyAndPunctuationOnly) {
  EXPECT_TRUE(split_words("").empty());
  EXPECT_TRUE(split_words("!!! ,,, ...").empty());
}

TEST(Tokenizer, UnknownWordsBecomeUnk) {
  Vocab v;
  v.add("known");
  const auto ids = tokenize(v, "known stranger");
  EXPECT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[1], Vocab::kUnk);
}

TEST(Tokenizer, DetokenizeInverse) {
  Vocab v;
  v.add("alpha");
  v.add("beta");
  const auto ids = tokenize(v, "alpha beta alpha");
  EXPECT_EQ(detokenize(v, ids), "alpha beta alpha");
}

TEST(Tokenizer, PadTo) {
  auto padded = pad_to({5, 6}, 4);
  EXPECT_EQ(padded, (std::vector<std::int32_t>{5, 6, Vocab::kPad, Vocab::kPad}));
  auto truncated = pad_to({1, 2, 3}, 2);
  EXPECT_EQ(truncated.size(), 2u);
}

TEST(PseudoWord, DeterministicAndNonEmpty) {
  Rng a(3), b(3);
  for (int i = 0; i < 20; ++i) {
    const std::string w1 = pseudo_word(a);
    EXPECT_EQ(w1, pseudo_word(b));
    EXPECT_GE(w1.size(), 2u);
  }
}

// Sentence statistics: function-word fraction tracks configuration.
class SentenceMixture : public ::testing::TestWithParam<double> {};

TEST_P(SentenceMixture, FunctionWordFraction) {
  Rng rng(17);
  WorldConfig cfg;
  cfg.num_domains = 2;
  cfg.concepts_per_domain = 10;
  cfg.function_word_prob = GetParam();
  cfg.polysemous_prob = 0.1;
  World w = World::generate(cfg, rng);
  std::size_t function_tokens = 0, total = 0;
  for (int i = 0; i < 400; ++i) {
    const Sentence s = w.sample_sentence(0, rng);
    for (const auto mid : s.meanings) {
      ++total;
      if (w.meaning(mid).domain == World::kSharedDomain) ++function_tokens;
    }
  }
  EXPECT_NEAR(function_tokens / static_cast<double>(total), GetParam(), 0.05);
}

INSTANTIATE_TEST_SUITE_P(Sweep, SentenceMixture,
                         ::testing::Values(0.1, 0.25, 0.4));

}  // namespace
}  // namespace semcache::text
