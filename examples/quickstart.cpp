// Quickstart: the smallest complete tour of the semantic edge system.
//
// Builds a 2-domain world, pretrains the general KB models, registers two
// users on different edge servers, and sends a handful of messages —
// printing what was said (surface words), what was meant (senses), what
// the receiver decoded, and what it cost on the wire.
//
// Run: ./quickstart [seed]
#include <cstdlib>
#include <iostream>

#include "core/system.hpp"

using namespace semcache;

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;

  core::SystemConfig config;
  config.seed = seed;
  config.world.num_domains = 2;
  config.world.concepts_per_domain = 24;
  config.world.num_polysemous = 8;
  config.pretrain.steps = 5000;
  config.codec.feature_dim = 16;
  config.feature_bits = 6;

  std::cout << "Pretraining general KB models for 2 domains...\n";
  auto system = core::SemanticEdgeSystem::build(config);
  auto& world = system->world();
  std::cout << "world: " << world.surface_count() << " surface words, "
            << world.meaning_count() << " meanings\n\n";

  system->register_user("alice", 0, nullptr);
  system->register_user("bob", 1, nullptr);

  for (std::size_t d = 0; d < world.num_domains(); ++d) {
    std::cout << "--- domain: " << world.domain_name(d) << " ---\n";
    for (int i = 0; i < 3; ++i) {
      const text::Sentence msg = system->sample_message("alice", d);
      const core::TransmitReport r = system->transmit("alice", "bob", msg);
      std::cout << "alice says : " << world.surface_to_string(msg.surface)
                << "\n  meant    : " << world.meanings_to_string(msg.meanings)
                << "\n  bob got  : "
                << world.meanings_to_string(r.decoded_meanings)
                << "\n  accuracy=" << r.token_accuracy
                << " payload=" << r.payload_bytes << "B"
                << " selected=" << world.domain_name(r.domain_selected)
                << " latency=" << r.latency_s * 1e3 << "ms\n";
    }
  }

  const core::SystemStats& st = system->stats();
  std::cout << "\ntotals: " << st.messages << " messages, "
            << st.feature_bytes << " feature bytes, " << st.updates
            << " model updates, " << st.selection_errors
            << " selection errors\n";
  return 0;
}
