// Personalization: watch the Fig. 1 update loop (③/④) work.
//
// A user speaks a strong personal idiolect (private slang for most domain
// concepts). The general KB model misunderstands them; every message is
// buffered with its decoder-copy mismatch, and once the buffer trips the
// user-specific model is fine-tuned and its decoder delta is shipped to
// the receiver edge. The printed trace shows accuracy recovering and the
// replicas staying byte-identical after every sync.
//
// Run: ./personalization [seed]
#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "core/system.hpp"

using namespace semcache;

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 3;

  core::SystemConfig config;
  config.seed = seed;
  config.world.num_domains = 2;
  config.world.concepts_per_domain = 20;
  config.pretrain.steps = 5000;
  config.codec.feature_dim = 16;
  config.feature_bits = 4;
  config.oracle_selection = true;  // isolate adaptation from selection
  config.buffer_trigger = 16;
  config.finetune_epochs = 8;

  std::cout << "Pretraining general KB models...\n";
  auto system = core::SemanticEdgeSystem::build(config);

  text::IdiolectConfig idio;
  idio.substitution_rate = 0.8;  // speaks almost entirely in private slang
  idio.slang_prob = 0.9;
  system->register_user("slangmaster", 0, &idio);
  system->register_user("listener", 1, nullptr);

  std::cout << "\nslangmaster speaks a private idiolect; watch the user-"
               "specific model adapt:\n\n"
            << "  msgs | window accuracy | mismatch (decoder copy) | events\n";

  metrics::OnlineStats window_acc, window_mis;
  for (int i = 1; i <= 96; ++i) {
    const auto msg = system->sample_message("slangmaster", 0);
    const auto r = system->transmit("slangmaster", "listener", msg);
    window_acc.add(r.token_accuracy);
    window_mis.add(r.mismatch);
    static std::string events;
    if (r.triggered_update) {
      events += " update#" +
                std::to_string(system->stats().updates) + "(" +
                std::to_string(r.sync_bytes) + "B sync)";
    }
    if (i % 8 == 0) {
      std::cout << "  " << std::setw(4) << i << " | " << std::fixed
                << std::setprecision(3) << std::setw(15)
                << window_acc.mean() << " | " << std::setw(23)
                << window_mis.mean() << " |" << events << "\n";
      window_acc = {};
      window_mis = {};
      events.clear();
    }
  }

  std::cout << "\nreplica check (sender decoder copy vs receiver decoder): "
            << (system->replicas_in_sync("slangmaster", 0, 0, 1)
                    ? "byte-identical"
                    : "DIVERGED (bug!)")
            << "\n"
            << "total gradient sync bytes: " << system->stats().sync_bytes
            << " across " << system->stats().updates << " updates\n";
  return 0;
}
