// Channel explorer: poke the PHY substrate interactively.
//
// Sends one semantic message through every combination of channel code x
// modulation at a chosen SNR and prints what survives — a compact way to
// see coding gain, modulation sensitivity, and the graceful degradation of
// semantic features.
//
// Run: ./channel_explorer [snr_db] [seed]
#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "channel/pipeline.hpp"
#include "metrics/ngram.hpp"
#include "semantic/fidelity.hpp"
#include "semantic/quantizer.hpp"
#include "semantic/trainer.hpp"

using namespace semcache;

int main(int argc, char** argv) {
  const double snr_db = argc > 1 ? std::strtod(argv[1], nullptr) : 4.0;
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 5;

  Rng rng(seed);
  text::WorldConfig wc;
  wc.num_domains = 2;
  wc.concepts_per_domain = 20;
  text::World world = text::World::generate(wc, rng);

  semantic::CodecConfig cc;
  cc.surface_vocab = world.surface_count();
  cc.meaning_vocab = world.meaning_count();
  cc.sentence_length = wc.sentence_length;
  cc.feature_dim = 16;
  semantic::FeatureQuantizer quantizer(cc.feature_dim, 4);

  std::cout << "Training a domain KB codec...\n";
  Rng init(seed ^ 1);
  semantic::SemanticCodec codec(cc, init);
  semantic::TrainConfig tc;
  tc.steps = 5000;
  tc.feature_noise = quantizer.max_error() / 2;
  Rng trng(seed ^ 2);
  semantic::CodecTrainer::pretrain_domain(codec, world, 0, tc, trng);

  const auto msg = world.sample_sentence(0, rng);
  std::cout << "\nmessage : " << world.surface_to_string(msg.surface)
            << "\nmeaning : " << world.meanings_to_string(msg.meanings)
            << "\nsnr     : " << snr_db << " dB (AWGN)\n\n";

  std::cout << std::left << std::setw(14) << "code" << std::setw(8) << "mod"
            << std::setw(10) << "airtime" << std::setw(9) << "acc"
            << "decoded\n";
  for (const std::string code :
       {"uncoded", "rep3", "hamming74", "conv_k3_r12"}) {
    for (const channel::Modulation mod :
         {channel::Modulation::kBpsk, channel::Modulation::kQpsk,
          channel::Modulation::kQam16}) {
      auto pipe =
          channel::make_awgn_pipeline(channel::make_code(code), mod, snr_db);
      // Average over repeated transmissions of the same message.
      metrics::OnlineStats acc;
      std::vector<std::int32_t> last;
      Rng crng(seed ^ 3);
      for (int i = 0; i < 50; ++i) {
        const auto feature = codec.encoder().encode(msg.surface);
        const BitVec rx = pipe->transmit(quantizer.quantize(feature), crng);
        last = codec.decoder().decode(quantizer.dequantize(rx));
        acc.add(metrics::token_accuracy(msg.meanings, last));
      }
      std::cout << std::setw(14) << code << std::setw(8)
                << channel::modulation_name(mod) << std::setw(10)
                << pipe->code().encoded_length(quantizer.total_bits())
                << std::setw(9) << std::setprecision(3) << acc.mean()
                << world.meanings_to_string(last) << "\n";
    }
  }
  std::cout << "\n(airtime = coded bits on the channel for the "
            << quantizer.total_bits() << "-bit semantic payload)\n";
  return 0;
}
