// Metaverse chat: the paper's motivating scenario (§I).
//
// Several users on two edge servers hold multi-topic conversations. The
// system must pick the right domain KB per message (watch the selector deal
// with "bus", "virus", "stream"...), establish user-specific models on
// first contact, and keep decoder replicas in sync as users drift between
// topics.
//
// Run: ./metaverse_chat [seed]
#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "core/system.hpp"
#include "select/context.hpp"

using namespace semcache;

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 11;

  core::SystemConfig config;
  config.seed = seed;
  config.world.num_domains = 4;  // it, medical, news, entertainment
  config.world.concepts_per_domain = 20;
  config.world.num_polysemous = 12;
  config.pretrain.steps = 5000;
  config.codec.feature_dim = 16;
  config.feature_bits = 4;
  config.buffer_trigger = 12;

  std::cout << "Building a 4-domain metaverse chat system "
               "(pretraining KB models)...\n";
  auto system = core::SemanticEdgeSystem::build(config);
  auto& world = system->world();

  // Three chat pairs; one speaker has a heavy personal idiolect.
  text::IdiolectConfig slang;
  slang.substitution_rate = 0.5;
  system->register_user("nova", 0, &slang);
  system->register_user("rex", 1, nullptr);
  system->register_user("ada", 0, nullptr);
  system->register_user("lin", 1, nullptr);

  // A sticky-topic conversation: a few messages per topic, then drift.
  Rng conv_rng(seed ^ 0x77);
  struct Turn {
    const char* from;
    const char* to;
  };
  const Turn turns[] = {{"nova", "rex"}, {"ada", "lin"}};

  std::size_t topic = 0;
  std::cout << "\n";
  for (int round = 0; round < 16; ++round) {
    if (round % 4 == 3) topic = (topic + 1) % world.num_domains();
    for (const Turn& t : turns) {
      const auto msg = system->sample_message(t.from, topic);
      const auto r = system->transmit(t.from, t.to, msg);
      std::cout << std::left << std::setw(5) << t.from << "->" << std::setw(4)
                << t.to << " [" << world.domain_name(msg.domain) << "->"
                << world.domain_name(r.domain_selected)
                << (r.selection_correct ? "  ] " : " X] ")
                << world.surface_to_string(msg.surface) << "\n"
                << "      understood: "
                << world.meanings_to_string(r.decoded_meanings)
                << "  (acc " << std::setprecision(2) << r.token_accuracy
                << ", " << r.payload_bytes << " B"
                << (r.triggered_update ? ", model update -> sync" : "")
                << ")\n";
    }
  }

  const auto& st = system->stats();
  std::cout << "\n--- session summary ---\n"
            << "messages:          " << st.messages << "\n"
            << "feature bytes:     " << st.feature_bytes << "\n"
            << "sync bytes:        " << st.sync_bytes << " (" << st.updates
            << " updates)\n"
            << "selection errors:  " << st.selection_errors << "\n"
            << "user model slots:  " << system->edge_state(0).slot_count()
            << " on edge0, " << system->edge_state(1).slot_count()
            << " on edge1\n"
            << "replicas in sync:  "
            << (system->replicas_in_sync("nova", 0, 0, 1) ||
                        system->edge_state(0).find_slot("nova", 0) == nullptr
                    ? "yes"
                    : "NO")
            << "\n";
  return 0;
}
